// Distributed flow service tests: frame codec hardening, protocol
// round-trips, and the chaos matrix — a coordinator plus in-process worker
// threads under deterministic fault injection (kill at every stage boundary,
// corrupt frame, dropped connection, hung worker, zero-worker degradation,
// poison-job quarantine), each run byte-compared against the single-process
// FlowService result log. The invariant under test is the headline one:
// stable-form results are identical for every worker count and every failure
// schedule.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.h"
#include "dist/frame.h"
#include "dist/protocol.h"
#include "dist/worker.h"
#include "serve/jsonl.h"
#include "serve/service.h"
#include "util/socket.h"

namespace repro {
namespace {

// Scratch directory unique to the test, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("repro_dist_" + name + "_" + std::to_string(::getpid())))
                 .string()) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

// ---- frame codec ----------------------------------------------------------

TEST(Frame, RoundTripsThroughArbitraryChunking) {
  const std::string payloads[] = {"", std::string("\0\x01\xff binary", 10),
                                  std::string(100000, 'x')};
  std::string stream;
  for (std::uint32_t i = 0; i < 3; ++i)
    stream += encode_frame(i + 1, payloads[i]);

  // Feed one byte at a time: the decoder must reassemble exact boundaries.
  FrameDecoder dec;
  std::vector<Frame> got;
  Frame f;
  for (char c : stream) {
    dec.feed(std::string_view(&c, 1));
    while (dec.next(&f)) got.push_back(f);
  }
  ASSERT_EQ(got.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(got[i].tag, i + 1);
    EXPECT_EQ(got[i].payload, payloads[i]);
  }
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Frame, IncompleteFrameIsNotAnError) {
  const std::string bytes = encode_frame(7, "partial delivery");
  FrameDecoder dec;
  dec.feed(std::string_view(bytes).substr(0, bytes.size() - 1));
  Frame f;
  EXPECT_FALSE(dec.next(&f));  // waiting, not corrupt
  dec.feed(std::string_view(bytes).substr(bytes.size() - 1));
  ASSERT_TRUE(dec.next(&f));
  EXPECT_EQ(f.payload, "partial delivery");
}

TEST(Frame, DetectsPayloadCorruption) {
  std::string bytes = encode_frame(5, "checksummed payload");
  bytes[kFrameHeaderBytes + 4] ^= 0x20;  // flip one payload byte
  FrameDecoder dec;
  dec.feed(bytes);
  Frame f;
  EXPECT_THROW(dec.next(&f), FrameError);
}

TEST(Frame, DetectsHeaderCorruption) {
  {
    std::string bytes = encode_frame(5, "x");
    bytes[0] ^= 0xff;  // bad magic
    FrameDecoder dec;
    dec.feed(bytes);
    Frame f;
    EXPECT_THROW(dec.next(&f), FrameError);
  }
  {
    std::string bytes = encode_frame(5, "x");
    bytes[4] ^= 0xff;  // unsupported frame version
    FrameDecoder dec;
    dec.feed(bytes);
    Frame f;
    EXPECT_THROW(dec.next(&f), FrameError);
  }
}

TEST(Frame, RejectsImplausiblePayloadLength) {
  const std::string bytes = encode_frame(5, std::string(64, 'y'));
  FrameDecoder dec(/*max_payload=*/16);
  dec.feed(bytes);
  Frame f;
  EXPECT_THROW(dec.next(&f), FrameError);
}

TEST(Frame, UnknownTagStillFramesCleanly) {
  // The codec is content-agnostic: a receiver can skip a tag it does not
  // know and keep the stream — that is the forward-compatibility story.
  FrameDecoder dec;
  dec.feed(encode_frame(0xdeadbeef, "future message kind"));
  dec.feed(encode_frame(kFrameHeartbeat, encode_heartbeat({42})));
  Frame f;
  ASSERT_TRUE(dec.next(&f));
  EXPECT_EQ(f.tag, 0xdeadbeefu);
  ASSERT_TRUE(dec.next(&f));
  EXPECT_EQ(f.tag, static_cast<std::uint32_t>(kFrameHeartbeat));
  EXPECT_EQ(decode_heartbeat(f.payload).seq, 42u);
}

// ---- protocol messages ----------------------------------------------------

TEST(Protocol, HandshakeMessagesRoundTrip) {
  const HelloMsg h = decode_hello(encode_hello({kProtocolVersion, 12345}));
  EXPECT_EQ(h.protocol_version, kProtocolVersion);
  EXPECT_EQ(h.pid, 12345u);
  EXPECT_EQ(decode_hello_ack(encode_hello_ack({9})).worker_id, 9u);
}

TEST(Protocol, AssignRoundTripsEveryJobSpecField) {
  AssignMsg m;
  m.job_index = 3;
  m.attempt = 2;
  m.spec.id = "j-\"quoted\"";
  m.spec.circuit = "ex5p";
  m.spec.scale = 0.07;
  m.spec.seed = 987654321;
  m.spec.variant = "mc";
  m.spec.placer = "hybrid";
  m.spec.route = false;
  m.spec.engine_threads = 4;
  m.spec.timeout_seconds = 12.5;
  m.spec.inject_fail_stage = "route";
  m.spec.inject_hang_stage = "place";
  m.snapshot = std::string("\x00\x01snapshot bytes", 15);

  const AssignMsg d = decode_assign(encode_assign(m));
  EXPECT_EQ(d.job_index, 3u);
  EXPECT_EQ(d.attempt, 2u);
  EXPECT_EQ(d.spec.id, m.spec.id);
  EXPECT_EQ(d.spec.circuit, "ex5p");
  EXPECT_DOUBLE_EQ(d.spec.scale, 0.07);
  EXPECT_EQ(d.spec.seed, 987654321u);
  EXPECT_EQ(d.spec.variant, "mc");
  EXPECT_EQ(d.spec.placer, "hybrid");
  EXPECT_FALSE(d.spec.route);
  EXPECT_EQ(d.spec.engine_threads, 4);
  EXPECT_DOUBLE_EQ(d.spec.timeout_seconds, 12.5);
  EXPECT_EQ(d.spec.inject_fail_stage, "route");
  EXPECT_EQ(d.spec.inject_hang_stage, "place");
  EXPECT_EQ(d.snapshot, m.snapshot);
}

TEST(Protocol, ResultRoundTripsMetricsAndAudit) {
  ResultMsg m;
  m.job_index = 1;
  m.attempt = 3;
  m.outcome = AttemptOutcome::kAudit;
  m.error = "audit: overlap at (3,4)";
  m.completed_stage = 2;
  m.resumed = true;
  m.has_metrics = true;
  m.metrics.wirelength = 1234;
  m.audit_level = "paranoid";
  m.audit_checks = 17;
  m.audit_stage = "replicate";
  m.audit_findings = 2;
  m.audit_jsonl = "{\"kind\":\"overlap\"}";
  m.place_seconds = 1.25;
  m.route_peak_rss_bytes = 1ull << 33;
  m.arena_bytes = 4096;

  const ResultMsg d = decode_result(encode_result(m));
  EXPECT_EQ(d.attempt, 3u);
  EXPECT_EQ(d.outcome, AttemptOutcome::kAudit);
  EXPECT_EQ(d.error, m.error);
  EXPECT_EQ(d.completed_stage, 2);
  EXPECT_TRUE(d.resumed);
  ASSERT_TRUE(d.has_metrics);
  EXPECT_EQ(d.metrics.wirelength, 1234);
  EXPECT_EQ(d.audit_level, "paranoid");
  EXPECT_EQ(d.audit_checks, 17);
  EXPECT_EQ(d.audit_stage, "replicate");
  EXPECT_EQ(d.audit_findings, 2);
  EXPECT_EQ(d.audit_jsonl, m.audit_jsonl);
  EXPECT_DOUBLE_EQ(d.place_seconds, 1.25);
  EXPECT_EQ(d.route_peak_rss_bytes, 1ull << 33);
  EXPECT_EQ(d.arena_bytes, 4096u);
}

TEST(Protocol, DecodersRejectMalformedPayloads) {
  EXPECT_THROW(decode_assign(""), FrameError);
  EXPECT_THROW(decode_result("garbage"), FrameError);
  const std::string ok = encode_result(ResultMsg{});
  EXPECT_THROW(decode_result(ok.substr(0, ok.size() / 2)), FrameError);
  EXPECT_THROW(decode_result(ok + "trailing"), FrameError);  // over-long
  EXPECT_THROW(decode_heartbeat("abc"), FrameError);
}

// The coordinator must merge a remote attempt's payload into the shared
// result slot exactly the way the in-process retry loop does: audit checks
// accumulate across attempts and a failed attempt's error survives a later
// successful attempt (its message is empty, so it must not overwrite).
TEST(Protocol, ApplyResultPayloadReplicatesSharedSlotSemantics) {
  JobResult r;
  r.error = "attempt 1: injected failure in route";
  r.audit_checks = 5;

  ResultMsg done;
  done.outcome = AttemptOutcome::kDone;
  done.error = "";  // success carries no message
  done.audit_checks = 7;
  done.has_metrics = true;
  done.metrics.wirelength = 42;
  apply_result_payload(done, r);

  EXPECT_EQ(r.error, "attempt 1: injected failure in route");
  EXPECT_EQ(r.audit_checks, 12);  // accumulated, not replaced
  EXPECT_TRUE(r.has_metrics);
  EXPECT_EQ(r.metrics.wirelength, 42);

  ResultMsg failed;
  failed.outcome = AttemptOutcome::kError;
  failed.error = "new failure";
  apply_result_payload(failed, r);
  EXPECT_EQ(r.error, "new failure");  // real message does overwrite
}

// ---- fault plan parsing ---------------------------------------------------

TEST(FaultPlan, ParsesEveryHookAndCombinations) {
  FaultPlan p;
  std::string err;
  ASSERT_TRUE(parse_fault_plan("", &p, &err));
  EXPECT_FALSE(p.any());

  ASSERT_TRUE(parse_fault_plan("drop_connection_after_frames=3", &p, &err));
  EXPECT_EQ(p.drop_after_frames, 3);

  ASSERT_TRUE(parse_fault_plan("corrupt_frame=2,hang_worker=replicate:4", &p,
                               &err))
      << err;
  EXPECT_EQ(p.corrupt_frame, 2);
  EXPECT_EQ(p.hang_stage, "replicate");
  EXPECT_EQ(p.hang_nth, 4);

  ASSERT_TRUE(parse_fault_plan("kill_worker_at_stage=route", &p, &err));
  EXPECT_EQ(p.kill_stage, "route");
  EXPECT_EQ(p.kill_nth, 1);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  FaultPlan p;
  std::string err;
  EXPECT_FALSE(parse_fault_plan("no_such_hook=1", &p, &err));
  EXPECT_FALSE(parse_fault_plan("corrupt_frame=zero", &p, &err));
  EXPECT_FALSE(parse_fault_plan("corrupt_frame=0", &p, &err));
  EXPECT_FALSE(parse_fault_plan("kill_worker_at_stage=synthesize", &p, &err));
  EXPECT_FALSE(parse_fault_plan("hang_worker=place:x", &p, &err));
}

// ---- chaos matrix ---------------------------------------------------------

std::vector<std::string> stable_lines(const std::vector<JobResult>& results) {
  std::vector<std::string> lines;
  for (const auto& r : results) lines.push_back(format_result_line(r, true));
  return lines;
}

// Three small jobs covering route/variant diversity; identical to the batch
// the CI chaos script runs.
const std::vector<JobSpec>& chaos_batch() {
  static const std::vector<JobSpec> specs = [] {
    std::vector<JobSpec> s(3);
    s[0].id = "j1";
    s[0].circuit = "tseng";
    s[0].scale = 0.05;
    s[0].seed = 3;
    s[0].variant = "lex3";
    s[1].id = "j2";
    s[1].circuit = "ex5p";
    s[1].scale = 0.05;
    s[1].seed = 5;
    s[1].variant = "rt";
    s[2].id = "j3";
    s[2].circuit = "s298";
    s[2].scale = 0.04;
    s[2].seed = 9;
    s[2].variant = "none";
    for (auto& spec : s) {
      spec.route = true;
      spec.engine_threads = 1;
    }
    return s;
  }();
  return specs;
}

// Golden result log: the uninterrupted single-process run, computed once.
const std::vector<std::string>& chaos_golden() {
  static const std::vector<std::string> lines = [] {
    ServiceOptions opt;
    opt.threads = 1;
    FlowService svc(opt);
    return stable_lines(svc.run_batch(chaos_batch()));
  }();
  return lines;
}

struct DistParams {
  std::vector<FaultPlan> workers;  ///< one in-process worker per entry
  double heartbeat_timeout_s = 1.5;
  double degrade_grace_s = 0.25;
  int max_worker_deaths_per_job = 2;
  double worker_heartbeat_s = 0.05;
  double hang_max_s = 1.5;
};

struct DistRun {
  std::vector<JobResult> results;
  DistStats dist;
  ServiceStats stats;
  std::vector<int> worker_rcs;
};

// Runs one batch through a coordinator on an ephemeral TCP port with the
// requested in-process worker threads, then shuts everything down.
DistRun run_dist(const ServiceOptions& sopt, const std::vector<JobSpec>& specs,
                 const DistParams& p) {
  CoordinatorOptions copt;
  copt.service = sopt;
  std::string err;
  EXPECT_TRUE(SocketAddr::parse("tcp:0", &copt.listen, &err)) << err;
  copt.heartbeat_timeout_s = p.heartbeat_timeout_s;
  copt.degrade_grace_s = p.degrade_grace_s;
  copt.max_worker_deaths_per_job = p.max_worker_deaths_per_job;

  Coordinator coord(copt);
  const SocketAddr bound = coord.start();

  std::atomic<bool> stop{false};
  std::vector<int> rcs(p.workers.size(), -1);
  std::vector<std::thread> threads;
  threads.reserve(p.workers.size());
  for (std::size_t i = 0; i < p.workers.size(); ++i) {
    WorkerOptions wopt;
    wopt.service = sopt;
    wopt.connect = bound;
    wopt.fault = p.workers[i];
    wopt.heartbeat_interval_s = p.worker_heartbeat_s;
    wopt.hang_max_s = p.hang_max_s;
    threads.emplace_back(
        [&rcs, &stop, i, wopt] { rcs[i] = run_worker(wopt, &stop); });
  }

  DistRun out;
  out.results = coord.run_batch(specs);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  coord.stop();
  out.dist = coord.dist_stats();
  out.stats = coord.stats();
  out.worker_rcs = rcs;
  return out;
}

// Plain distributed runs: 1, 2 and 4 workers, no faults — the result log
// must match the single-process run byte-for-byte, and every job must have
// executed remotely.
TEST(DistChaos, PlainRunsAreByteIdenticalForEveryWorkerCount) {
  for (const int workers : {1, 2, 4}) {
    ServiceOptions sopt;
    sopt.threads = 1;
    DistParams p;
    p.workers.assign(static_cast<std::size_t>(workers), FaultPlan{});
    const DistRun run = run_dist(sopt, chaos_batch(), p);
    EXPECT_EQ(stable_lines(run.results), chaos_golden())
        << workers << " workers diverged from the single-process run";
    EXPECT_EQ(run.dist.jobs_completed_remote, 3u) << workers << " workers";
    EXPECT_EQ(run.dist.workers_died, 0u);
    EXPECT_GE(run.dist.checkpoints_streamed, 9u);  // 3 stages x 3 jobs
    for (const int rc : run.worker_rcs) EXPECT_EQ(rc, 0);
  }
}

// The acceptance matrix: kill one worker at every stage boundary, for 1, 2
// and 4 workers. The batch must finish (surviving workers or in-process
// degradation) and the result log must not move by a byte. A worker death
// never burns the job's retry budget: every job still reports attempt 1.
TEST(DistChaos, KillAtEveryStageBoundaryIsByteIdentical) {
  for (const int workers : {1, 2, 4}) {
    for (const char* stage : {"place", "replicate", "route"}) {
      ServiceOptions sopt;
      sopt.threads = 1;
      DistParams p;
      p.workers.assign(static_cast<std::size_t>(workers), FaultPlan{});
      p.workers[0].kill_stage = stage;
      p.workers[0].kill_nth = 1;
      const DistRun run = run_dist(sopt, chaos_batch(), p);
      EXPECT_EQ(stable_lines(run.results), chaos_golden())
          << workers << " workers, kill at " << stage;
      for (const auto& r : run.results) {
        EXPECT_EQ(r.state, JobState::kDone) << r.spec.id;
        EXPECT_EQ(r.attempts, 1) << r.spec.id
                                 << ": a worker death must not burn retries";
      }
      // With <= 3 workers the faulted one is guaranteed a job, so the kill
      // must actually have fired; with 4 it may have sat idle.
      if (workers <= 3) {
        EXPECT_GE(run.dist.workers_died, 1u)
            << workers << " workers, kill at " << stage;
        EXPECT_GE(run.dist.jobs_reassigned, 1u);
      }
    }
  }
}

TEST(DistChaos, CorruptFrameDropsOneConnectionNotTheBatch) {
  ServiceOptions sopt;
  sopt.threads = 1;
  DistParams p;
  p.workers.assign(2, FaultPlan{});
  p.workers[0].corrupt_frame = 2;
  const DistRun run = run_dist(sopt, chaos_batch(), p);
  EXPECT_EQ(stable_lines(run.results), chaos_golden());
  EXPECT_GE(run.dist.frame_errors, 1u);
  EXPECT_GE(run.dist.workers_died, 1u);  // dropped, then it reconnected
}

TEST(DistChaos, DroppedConnectionReconnectsAndFinishes) {
  ServiceOptions sopt;
  sopt.threads = 1;
  DistParams p;
  p.workers.assign(2, FaultPlan{});
  p.workers[1].drop_after_frames = 2;
  const DistRun run = run_dist(sopt, chaos_batch(), p);
  EXPECT_EQ(stable_lines(run.results), chaos_golden());
  EXPECT_GE(run.dist.workers_died, 1u);
  for (const int rc : run.worker_rcs) EXPECT_EQ(rc, 0);
}

// A hung worker is the worst liveness case: the TCP peer stays connected but
// stops making progress and stops heartbeating. Only the heartbeat deadline
// can catch it.
TEST(DistChaos, HungWorkerIsDetectedByHeartbeatDeadline) {
  ServiceOptions sopt;
  sopt.threads = 1;
  DistParams p;
  p.workers.assign(2, FaultPlan{});
  p.workers[0].hang_stage = "place";
  p.heartbeat_timeout_s = 0.5;
  p.hang_max_s = 1.5;
  const DistRun run = run_dist(sopt, chaos_batch(), p);
  EXPECT_EQ(stable_lines(run.results), chaos_golden());
  EXPECT_GE(run.dist.heartbeat_timeouts, 1u);
  EXPECT_GE(run.dist.jobs_reassigned, 1u);
}

// Zero workers ever: after the grace period the coordinator runs the batch
// itself. Degradation must be invisible in the result log.
TEST(DistChaos, ZeroWorkersDegradesToInProcessExecution) {
  ServiceOptions sopt;
  sopt.threads = 1;
  DistParams p;  // no workers
  p.degrade_grace_s = 0.1;
  const DistRun run = run_dist(sopt, chaos_batch(), p);
  EXPECT_EQ(stable_lines(run.results), chaos_golden());
  EXPECT_EQ(run.dist.jobs_degraded, 3u);
  EXPECT_EQ(run.dist.jobs_completed_remote, 0u);
}

// A poison job that keeps killing workers is quarantined from remote
// execution and finished in-process — resuming from the checkpoint the dead
// worker streamed before it died, so no work is repeated.
TEST(DistChaos, PoisonJobIsQuarantinedFromRemoteExecution) {
  ServiceOptions sopt;
  sopt.threads = 1;
  DistParams p;
  p.workers.assign(1, FaultPlan{});
  p.workers[0].kill_stage = "place";
  p.max_worker_deaths_per_job = 1;
  p.degrade_grace_s = 30;  // the quarantine path must fire, not degradation
  const std::vector<JobSpec> specs{chaos_batch()[0]};
  const DistRun run = run_dist(sopt, specs, p);
  ASSERT_EQ(run.results.size(), 1u);
  EXPECT_EQ(format_result_line(run.results[0], true), chaos_golden()[0]);
  EXPECT_EQ(run.results[0].attempts, 1);
  EXPECT_EQ(run.dist.jobs_quarantined_remote, 1u);
  EXPECT_EQ(run.dist.workers_died, 1u);
  EXPECT_GE(run.dist.checkpoints_streamed, 1u);
  EXPECT_EQ(run.worker_rcs[0], 9);  // the in-process kill path unwound
}

// Genuine job failures (not worker deaths) follow the FlowService retry
// budget with the same jittered backoff and the same shared-result-slot
// semantics; the final log lines must match the in-process scheduler's.
TEST(DistChaos, RetryBudgetAndFailureLogMatchInProcessScheduler) {
  std::vector<JobSpec> specs{chaos_batch()[0], chaos_batch()[2]};
  specs[0].id = "poison";
  specs[0].inject_fail_stage = "route";

  ServiceOptions sopt;
  sopt.threads = 1;
  sopt.max_retries = 1;
  sopt.retry_backoff_seconds = 0.01;

  FlowService svc(sopt);
  const auto golden = stable_lines(svc.run_batch(specs));

  DistParams p;
  p.workers.assign(2, FaultPlan{});
  const DistRun run = run_dist(sopt, specs, p);
  EXPECT_EQ(stable_lines(run.results), golden);
  EXPECT_EQ(run.results[0].state, JobState::kFailed);
  EXPECT_EQ(run.results[0].attempts, 2);
  EXPECT_EQ(run.results[1].state, JobState::kDone);
  EXPECT_EQ(run.stats.jobs_retried, svc.stats().jobs_retried);
  EXPECT_EQ(run.stats.jobs_failed, svc.stats().jobs_failed);
}

// Invalid specs never reach a worker and report the same line either way.
TEST(DistChaos, InvalidSpecsAreRejectedIdentically) {
  std::vector<JobSpec> specs{chaos_batch()[0], chaos_batch()[2]};
  specs[0].id = "bogus";
  specs[0].circuit = "nonesuch";

  ServiceOptions sopt;
  sopt.threads = 1;
  FlowService svc(sopt);
  const auto golden = stable_lines(svc.run_batch(specs));

  DistParams p;
  p.workers.assign(1, FaultPlan{});
  const DistRun run = run_dist(sopt, specs, p);
  EXPECT_EQ(stable_lines(run.results), golden);
  EXPECT_EQ(run.results[0].state, JobState::kFailed);
  EXPECT_EQ(run.results[0].error_code, kJobInvalidSpec);
  EXPECT_EQ(run.stats.jobs_invalid, 1u);
}

// A checkpoint written by a single-process FlowService run is picked up by
// the coordinator in --resume mode and finished on a remote worker, landing
// on the uninterrupted run's bytes — the snapshot format, the streaming
// protocol and the disk format all agree.
TEST(DistService, ResumesSingleProcessCheckpointOnARemoteWorker) {
  TempDir dir("resume");
  const JobSpec spec = chaos_batch()[0];

  ServiceOptions crash_opt;
  crash_opt.threads = 1;
  crash_opt.checkpoint_dir = dir.path;
  crash_opt.stop_after_checkpoints = 1;
  FlowService crash(crash_opt);
  const auto crashed = crash.run_batch({spec});
  ASSERT_EQ(crashed[0].state, JobState::kCheckpointed);

  ServiceOptions sopt;
  sopt.threads = 1;
  sopt.checkpoint_dir = dir.path;
  sopt.resume = true;
  DistParams p;
  p.workers.assign(1, FaultPlan{});
  const DistRun run = run_dist(sopt, {spec}, p);
  ASSERT_EQ(run.results.size(), 1u);
  EXPECT_EQ(run.results[0].state, JobState::kDone);
  EXPECT_TRUE(run.results[0].resumed);
  EXPECT_EQ(run.stats.jobs_resumed, 1u);
  EXPECT_EQ(run.dist.jobs_completed_remote, 1u);
  EXPECT_EQ(format_result_line(run.results[0], true), chaos_golden()[0]);
}

}  // namespace
}  // namespace repro
