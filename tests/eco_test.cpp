// ECO session tests: delta codec, incremental-vs-cold agreement, result
// cache semantics, rejection/rollback guarantees, kill/resume byte identity
// and the SessionManager JSONL surface.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "eco/delta.h"
#include "eco/session.h"
#include "eco/session_manager.h"
#include "gen/circuit_gen.h"
#include "place/annealer.h"
#include "serve/jsonl.h"
#include "serve/snapshot.h"
#include "timing/timing_graph.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace repro {
namespace {

// Scratch directory unique to the test, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("repro_eco_" + name + "_" + std::to_string(::getpid())))
                 .string()) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

FlowSnapshot make_placed_snapshot(const char* circuit, double scale,
                                  std::uint64_t seed) {
  FlowSnapshot s;
  s.job_id = std::string(circuit) + "-job";
  s.circuit = circuit;
  s.variant = "none";
  s.stage = FlowStage::kPlaced;
  s.cfg.scale = scale;
  s.cfg.seed = seed;
  Rng rng(seed);
  const McncCircuit* c = nullptr;
  for (const McncCircuit& m : mcnc_suite())
    if (s.circuit == m.name) c = &m;
  s.nl = std::make_unique<Netlist>(generate_circuit(spec_for(*c, scale, seed)));
  s.grid_n = FpgaGrid::min_grid_for(
      s.nl->num_logic(), s.nl->num_input_pads() + s.nl->num_output_pads());
  s.grid = std::make_unique<FpgaGrid>(s.grid_n, s.grid_io_rat);
  AnnealerOptions aopt;
  aopt.seed = rng.next_u64();
  s.pl = std::make_unique<Placement>(
      anneal_placement(*s.nl, *s.grid, s.cfg.delay, aopt));
  s.rng_state = rng.state();
  return s;
}

std::vector<CellId> live_logic_cells(const Netlist& nl) {
  std::vector<CellId> out;
  for (CellId c : nl.live_cell_ids())
    if (nl.cell(c).kind == CellKind::kLogic) out.push_back(c);
  return out;
}

CellId first_pad(const Netlist& nl) {
  for (CellId c : nl.live_cell_ids())
    if (nl.cell(c).kind != CellKind::kLogic) return c;
  return CellId::invalid();
}

Delta delay_model_delta(double wire, double logic, double io, double ff) {
  Delta d;
  d.kind = DeltaKind::kSetDelayModel;
  d.wire_delay_per_unit = wire;
  d.logic_delay = logic;
  d.io_delay = io;
  d.ff_delay = ff;
  return d;
}

// A stream of deltas that are all valid against the *base* state and
// independent of one another (distinct cells, a still-free target slot).
std::vector<Delta> independent_stream(const Netlist& nl, const Placement& pl) {
  std::vector<Delta> out;
  out.push_back(delay_model_delta(1.07, 0.51, 0.31, 0.23));

  const std::vector<CellId> logic = live_logic_cells(nl);
  EXPECT_GE(logic.size(), 3u);

  Delta f;
  f.kind = DeltaKind::kSetFunction;
  f.cell = logic[0].value();
  f.function = nl.cell(logic[0]).function ^ 0x3u;
  f.registered = nl.cell(logic[0]).registered;
  out.push_back(f);

  const std::vector<Point> free = pl.free_logic_locations();
  if (!free.empty()) {
    Delta m;
    m.kind = DeltaKind::kMoveCell;
    m.cell = logic[1].value();
    m.x = free[0].x;
    m.y = free[0].y;
    out.push_back(m);
  }

  // Rewire pin 0 of some later cell onto its own pin-1 net: structurally
  // fresh sink, provably acyclic (the net already feeds this cell).
  for (std::size_t i = 2; i < logic.size(); ++i) {
    const Cell& c = nl.cell(logic[i]);
    if (c.inputs.size() >= 2 && c.inputs[0] != c.inputs[1] &&
        c.inputs[1].valid()) {
      Delta r;
      r.kind = DeltaKind::kRewireInput;
      r.cell = logic[i].value();
      r.pin = 0;
      r.net = c.inputs[1].value();
      out.push_back(r);
      break;
    }
  }
  return out;
}

// Hand-built 5-cell circuit with a registered feedback loop and a replicated
// pair: in -> a -> b(reg) -> a (feedback), b -> out, plus a' = replica of a.
FlowSnapshot make_tiny_cycle_snapshot() {
  FlowSnapshot s;
  s.job_id = "tiny-job";
  s.circuit = "tiny";
  s.variant = "none";
  s.stage = FlowStage::kPlaced;
  s.nl = std::make_unique<Netlist>();
  Netlist& nl = *s.nl;
  const CellId in = nl.add_input_pad("in");
  const CellId a = nl.add_logic("a", {nl.cell(in).output}, 0x2, false);
  const CellId b = nl.add_logic("b", {nl.cell(a).output}, 0x2, true);
  nl.grow_input(a, nl.cell(b).output, 0x6);
  const CellId out = nl.add_output_pad("out");
  nl.connect(nl.cell(b).output, out, 0);
  nl.replicate_cell(a);
  EXPECT_EQ(nl.validate(), "");
  s.grid_n = FpgaGrid::min_grid_for(
      nl.num_logic(), nl.num_input_pads() + nl.num_output_pads());
  s.grid = std::make_unique<FpgaGrid>(s.grid_n, s.grid_io_rat);
  AnnealerOptions aopt;
  aopt.seed = 1;
  s.pl = std::make_unique<Placement>(
      anneal_placement(nl, *s.grid, s.cfg.delay, aopt));
  return s;
}

// ---- delta codec ----------------------------------------------------------

TEST(DeltaCodec, RoundTripsEveryKind) {
  Delta m;
  m.kind = DeltaKind::kMoveCell;
  m.cell = 7;
  m.x = 3;
  m.y = 9;
  Delta f;
  f.kind = DeltaKind::kSetFunction;
  f.cell = 12;
  f.function = 0xDEADBEEFULL;
  f.registered = true;
  Delta r;
  r.kind = DeltaKind::kRewireInput;
  r.cell = 4;
  r.pin = 2;
  r.net = 31;
  const Delta dm = delay_model_delta(1.5, 0.25, 0.125, 0.0625);
  for (const Delta& d : {m, f, r, dm}) {
    const std::string enc = d.canonical_encoding();
    const Delta back = Delta::decode(enc);
    EXPECT_EQ(back.kind, d.kind);
    EXPECT_EQ(back.canonical_encoding(), enc);
  }
  const Delta back = Delta::decode(f.canonical_encoding());
  EXPECT_EQ(back.cell, 12);
  EXPECT_EQ(back.function, 0xDEADBEEFULL);
  EXPECT_TRUE(back.registered);
}

TEST(DeltaCodec, EncodingCoversOnlyActiveFields) {
  // Junk in fields of other kinds must not leak into the encoding — the
  // journal chain and the result-cache key depend on this.
  Delta a = delay_model_delta(1.5, 0.25, 0.125, 0.0625);
  Delta b = a;
  b.cell = 999;
  b.function = 77;
  b.pin = 3;
  EXPECT_EQ(a.canonical_encoding(), b.canonical_encoding());
}

TEST(DeltaCodec, RejectsCorruptEncodings) {
  Delta m;
  m.kind = DeltaKind::kMoveCell;
  m.cell = 7;
  const std::string enc = m.canonical_encoding();
  EXPECT_THROW(Delta::decode(std::string_view("")), EcoError);
  EXPECT_THROW(Delta::decode(std::string_view(enc.data(), enc.size() - 1)),
               EcoError);
  EXPECT_THROW(Delta::decode(enc + "x"), EcoError);
  std::string bad = enc;
  bad[0] = '\x7f';  // unknown kind tag
  EXPECT_THROW(Delta::decode(bad), EcoError);
}

TEST(DeltaCodec, ParsesKindNames) {
  DeltaKind k;
  ASSERT_TRUE(parse_delta_kind("move_cell", &k));
  EXPECT_EQ(k, DeltaKind::kMoveCell);
  ASSERT_TRUE(parse_delta_kind("set_function", &k));
  EXPECT_EQ(k, DeltaKind::kSetFunction);
  ASSERT_TRUE(parse_delta_kind("rewire_input", &k));
  EXPECT_EQ(k, DeltaKind::kRewireInput);
  ASSERT_TRUE(parse_delta_kind("set_delay_model", &k));
  EXPECT_EQ(k, DeltaKind::kSetDelayModel);
  EXPECT_FALSE(parse_delta_kind("resize", &k));
  EXPECT_STREQ(delta_kind_name(DeltaKind::kMoveCell), "move_cell");
}

// ---- session open / normalization -----------------------------------------

TEST(EcoSession, BaseChecksumIgnoresVolatileConfig) {
  FlowSnapshot a = make_placed_snapshot("tseng", 0.05, 7);
  FlowSnapshot b = make_placed_snapshot("tseng", 0.05, 7);
  a.job_id = "left";
  a.cfg.num_threads = 7;
  a.place_seconds = 123.0;
  b.job_id = "right";
  b.cfg.num_threads = 1;
  b.cfg.audit = AuditLevel::kParanoid;
  EcoSession sa("s", std::move(a), {});
  EcoSession sb("s", std::move(b), {});
  EXPECT_EQ(sa.base_checksum(), sb.base_checksum());
  EXPECT_EQ(sa.chain(), sa.base_checksum());
  EXPECT_EQ(sa.deltas_applied(), 0);
}

TEST(EcoSession, RejectsUnusableBase) {
  FlowSnapshot s = make_placed_snapshot("tseng", 0.05, 7);
  s.nl.reset();  // no circuit
  EXPECT_THROW(EcoSession("s", std::move(s), {}), EcoError);
  FlowSnapshot s2 = make_placed_snapshot("tseng", 0.05, 7);
  s2.stage = FlowStage::kInit;
  EXPECT_THROW(EcoSession("s", std::move(s2), {}), EcoError);
}

// ---- incremental vs cold agreement ----------------------------------------

TEST(EcoSession, ApplyMatchesColdRebuild) {
  FlowSnapshot base = make_placed_snapshot("tseng", 0.05, 7);
  const std::vector<Delta> stream =
      independent_stream(*base.nl, *base.pl);
  ASSERT_GE(stream.size(), 3u);
  EcoSession s("s1", std::move(base), {});
  for (const Delta& d : stream) {
    const EcoDeltaResult res = s.apply(d);
    ASSERT_TRUE(res.applied) << res.reject;
    EXPECT_FALSE(res.cache_hit);
    // Incremental metrics agree with a cold rebuild of the current state.
    EXPECT_EQ(res.wirelength, s.placement().total_wirelength());
    const TimingGraph cold(s.netlist(), s.placement(), s.config().delay);
    EXPECT_NEAR(res.crit_ns, cold.critical_delay(), 1e-9);
    EXPECT_TRUE(s.placement().legal());
    EXPECT_EQ(s.netlist().validate(), "");
  }
  EXPECT_EQ(s.deltas_applied(),
            static_cast<std::int64_t>(stream.size()));
  EXPECT_EQ(s.cold_rebuild_audit(), "");

  // query() repeats the last metrics without touching chain or journal.
  const std::uint64_t chain = s.chain();
  const EcoDeltaResult q = s.query();
  EXPECT_EQ(q.chain, chain);
  const TimingGraph cold(s.netlist(), s.placement(), s.config().delay);
  EXPECT_NEAR(q.crit_ns, cold.critical_delay(), 1e-9);
  EXPECT_EQ(q.wirelength, s.placement().total_wirelength());
}

TEST(EcoSession, MoveOntoFullSlotRunsLegalizer) {
  FlowSnapshot base = make_placed_snapshot("tseng", 0.05, 7);
  const std::vector<CellId> logic = live_logic_cells(*base.nl);
  ASSERT_GE(logic.size(), 2u);
  // A slot that is exactly at capacity and does not hold the moved cell.
  const CellId mover = logic[0];
  Point target{-1, -1};
  for (std::size_t i = 1; i < logic.size(); ++i) {
    const Point p = base.pl->location(logic[i]);
    if (p == base.pl->location(mover)) continue;
    if (base.pl->overuse(p) == 0) {
      target = p;
      break;
    }
  }
  if (target.x < 0) GTEST_SKIP() << "no full logic slot in this placement";
  EcoSession s("s1", std::move(base), {});
  Delta m;
  m.kind = DeltaKind::kMoveCell;
  m.cell = mover.value();
  m.x = target.x;
  m.y = target.y;
  const EcoDeltaResult res = s.apply(m);
  ASSERT_TRUE(res.applied) << res.reject;
  EXPECT_GT(res.legalizer_moves, 0);
  EXPECT_TRUE(s.placement().legal());
  const TimingGraph cold(s.netlist(), s.placement(), s.config().delay);
  EXPECT_NEAR(res.crit_ns, cold.critical_delay(), 1e-9);
  EXPECT_EQ(s.cold_rebuild_audit(), "");
}

// ---- rejections ------------------------------------------------------------

TEST(EcoSession, RejectionsLeaveSessionUntouched) {
  FlowSnapshot base = make_placed_snapshot("tseng", 0.05, 7);
  const CellId pad = first_pad(*base.nl);
  ASSERT_TRUE(pad.valid());
  const std::vector<CellId> logic = live_logic_cells(*base.nl);
  const Point logic_loc = base.pl->location(logic[0]);
  EcoSession s("s1", std::move(base), {});
  const std::string bytes_before = s.serialize();
  const std::uint64_t chain_before = s.chain();

  std::vector<Delta> bad;
  {
    Delta d;  // cell id out of range
    d.kind = DeltaKind::kMoveCell;
    d.cell = 1 << 28;
    bad.push_back(d);
  }
  {
    Delta d;  // pad onto a logic slot: kind-incompatible
    d.kind = DeltaKind::kMoveCell;
    d.cell = pad.value();
    d.x = logic_loc.x;
    d.y = logic_loc.y;
    bad.push_back(d);
  }
  {
    Delta d;  // off the array entirely
    d.kind = DeltaKind::kMoveCell;
    d.cell = logic[0].value();
    d.x = -5;
    d.y = 0;
    bad.push_back(d);
  }
  {
    Delta d;  // set_function on a pad
    d.kind = DeltaKind::kSetFunction;
    d.cell = pad.value();
    bad.push_back(d);
  }
  {
    Delta d;  // pin out of range
    d.kind = DeltaKind::kRewireInput;
    d.cell = logic[0].value();
    d.pin = 17;
    d.net = 0;
    bad.push_back(d);
  }
  {
    Delta d;  // self-loop: own output net back into own input
    d.kind = DeltaKind::kRewireInput;
    d.cell = logic[0].value();
    d.pin = 0;
    d.net = s.netlist().cell(logic[0]).output.value();
    bad.push_back(d);
  }
  {
    Delta d = delay_model_delta(-1.0, 0.5, 0.3, 0.2);  // negative constant
    bad.push_back(d);
  }

  for (const Delta& d : bad) {
    const EcoDeltaResult res = s.apply(d);
    EXPECT_FALSE(res.applied);
    EXPECT_FALSE(res.reject.empty());
    EXPECT_EQ(res.chain, chain_before);
  }
  EXPECT_EQ(s.chain(), chain_before);
  EXPECT_EQ(s.deltas_applied(), 0);
  EXPECT_EQ(s.serialize(), bytes_before);
}

TEST(EcoSession, RewireCreatingCombCycleIsRejected) {
  FlowSnapshot base = make_placed_snapshot("tseng", 0.05, 7);
  const Netlist& nl = *base.nl;
  // Find comb cell A whose output net has a comb logic sink S: rewiring an
  // input of A onto S's output would close a combinational loop A->S->A.
  CellId a = CellId::invalid();
  NetId s_out = NetId::invalid();
  for (CellId c : live_logic_cells(nl)) {
    const Cell& cc = nl.cell(c);
    if (cc.registered || cc.inputs.empty() || !cc.output.valid()) continue;
    for (const Sink& sk : nl.net(cc.output).sinks) {
      const Cell& sc = nl.cell(sk.cell);
      if (sc.kind == CellKind::kLogic && !sc.registered &&
          sc.output.valid() && nl.net_alive(sc.output)) {
        a = c;
        s_out = sc.output;
        break;
      }
    }
    if (a.valid()) break;
  }
  if (!a.valid()) GTEST_SKIP() << "no comb->comb pair in this circuit";
  EcoSession s("s1", std::move(base), {});
  Delta d;
  d.kind = DeltaKind::kRewireInput;
  d.cell = a.value();
  d.pin = 0;
  d.net = s_out.value();
  const EcoDeltaResult res = s.apply(d);
  EXPECT_FALSE(res.applied);
  EXPECT_NE(res.reject.find("cycle"), std::string::npos) << res.reject;
  EXPECT_EQ(s.cold_rebuild_audit(), "");
}

TEST(EcoSession, TinyCircuitBroadcastAndUnregisterGuard) {
  FlowSnapshot base = make_tiny_cycle_snapshot();
  const Netlist& bnl = *base.nl;
  CellId a = CellId::invalid(), b = CellId::invalid();
  for (CellId c : bnl.live_cell_ids()) {
    if (bnl.cell(c).name == "a") a = c;
    if (bnl.cell(c).name == "b") b = c;
  }
  ASSERT_TRUE(a.valid() && b.valid());
  ASSERT_EQ(bnl.eq_members(bnl.cell(a).eq_class).size(), 2u);
  EcoSession s("tiny", std::move(base), {});

  // Unregistering b would close the comb loop a -> b -> a: rejected.
  Delta unreg;
  unreg.kind = DeltaKind::kSetFunction;
  unreg.cell = b.value();
  unreg.function = s.netlist().cell(b).function;
  unreg.registered = false;
  const EcoDeltaResult r1 = s.apply(unreg);
  EXPECT_FALSE(r1.applied);
  EXPECT_NE(r1.reject.find("cycle"), std::string::npos) << r1.reject;

  // A function change on a is broadcast to its whole equivalence class.
  Delta f;
  f.kind = DeltaKind::kSetFunction;
  f.cell = a.value();
  f.function = 0x9;
  f.registered = false;
  const EcoDeltaResult r2 = s.apply(f);
  ASSERT_TRUE(r2.applied) << r2.reject;
  for (CellId m : s.netlist().eq_members(s.netlist().cell(a).eq_class))
    EXPECT_EQ(s.netlist().cell(m).function, 0x9u);
  EXPECT_EQ(s.netlist().validate(), "");
  EXPECT_EQ(s.cold_rebuild_audit(), "");
}

// ---- result cache ----------------------------------------------------------

TEST(EcoSession, CacheHitsReproduceMissResults) {
  EcoResultCache cache;
  EcoSessionOptions opt;
  opt.cache = &cache;

  FlowSnapshot base1 = make_placed_snapshot("tseng", 0.05, 7);
  const std::vector<Delta> stream =
      independent_stream(*base1.nl, *base1.pl);
  EcoSession s1("lead", std::move(base1), opt);
  std::vector<EcoDeltaResult> first;
  for (const Delta& d : stream) {
    first.push_back(s1.apply(d));
    ASSERT_TRUE(first.back().applied) << first.back().reject;
    EXPECT_FALSE(first.back().cache_hit);
  }
  EXPECT_EQ(s1.cache_misses(), stream.size());
  EXPECT_EQ(cache.size(), stream.size());

  // A second session over the identical base replays the stream from cache:
  // every apply is a hit and reproduces the evaluated metrics exactly.
  EcoSession s2("follow", make_placed_snapshot("tseng", 0.05, 7), opt);
  EXPECT_EQ(s2.base_checksum(), s1.base_checksum());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const EcoDeltaResult res = s2.apply(stream[i]);
    ASSERT_TRUE(res.applied) << res.reject;
    EXPECT_TRUE(res.cache_hit);
    EXPECT_EQ(res.chain, first[i].chain);
    EXPECT_EQ(res.crit_ns, first[i].crit_ns);
    EXPECT_EQ(res.wirelength, first[i].wirelength);
  }
  EXPECT_EQ(s2.cache_hits(), stream.size());
  EXPECT_EQ(s2.cache_misses(), 0u);

  // query() after a run of hits folds the deferred timing work and agrees
  // with a cold rebuild; a subsequent miss evaluates correctly too.
  const EcoDeltaResult q = s2.query();
  const TimingGraph cold(s2.netlist(), s2.placement(), s2.config().delay);
  EXPECT_NEAR(q.crit_ns, cold.critical_delay(), 1e-9);
  const EcoDeltaResult r =
      s2.apply(delay_model_delta(1.3, 0.5, 0.3, 0.2));
  ASSERT_TRUE(r.applied) << r.reject;
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(s2.cold_rebuild_audit(), "");
}

// ---- cancellation / rollback (satellite S3) --------------------------------

TEST(EcoSession, CancelledDeltaRollsBackToCommittedState) {
  FlowSnapshot base = make_placed_snapshot("tseng", 0.05, 7);
  const std::vector<Delta> stream =
      independent_stream(*base.nl, *base.pl);
  EcoSession s("s1", std::move(base), {});
  const EcoDeltaResult r0 = s.apply(stream[0]);
  ASSERT_TRUE(r0.applied);
  const std::string bytes_before = s.serialize();
  const std::uint64_t chain_before = s.chain();

  // Deadline already expired: apply() mutates, hits the cancellation point,
  // and must roll back to the committed state before propagating.
  CancelToken deadline;
  deadline.set_deadline_after(-1.0);
  EXPECT_THROW(s.apply(stream[1], &deadline), FlowCancelled);
  EXPECT_EQ(s.chain(), chain_before);
  EXPECT_EQ(s.deltas_applied(), 1);
  EXPECT_EQ(s.serialize(), bytes_before);

  // Kill-flag flavor of the same contract (the server's signal path).
  std::atomic<bool> kill{true};
  CancelToken killed;
  killed.set_kill_flag(&kill);
  try {
    s.apply(stream[1], &killed);
    FAIL() << "expected FlowCancelled";
  } catch (const FlowCancelled& e) {
    EXPECT_TRUE(e.killed());
  }
  EXPECT_EQ(s.serialize(), bytes_before);

  // The rolled-back state passes the audit battery and the cold rebuild.
  AuditOptions ao;
  ao.level = AuditLevel::kStage;
  const AuditReport rep = Auditor(ao).audit_stage(
      "eco.test.rollback", s.netlist(), &s.placement(), &s.config().delay);
  EXPECT_TRUE(rep.clean()) << rep.to_jsonl_lines();
  EXPECT_EQ(s.cold_rebuild_audit(), "");

  // The session keeps working after the cancelled applies.
  const EcoDeltaResult r1 = s.apply(stream[1]);
  ASSERT_TRUE(r1.applied) << r1.reject;
  EXPECT_EQ(s.cold_rebuild_audit(), "");
}

// ---- persistence -----------------------------------------------------------

TEST(EcoSession, SerializeResumeIsByteIdentical) {
  FlowSnapshot base = make_placed_snapshot("tseng", 0.05, 7);
  const std::vector<Delta> stream =
      independent_stream(*base.nl, *base.pl);
  ASSERT_GE(stream.size(), 3u);
  EcoSession s1("s1", std::move(base), {});
  for (std::size_t i = 0; i + 1 < stream.size(); ++i)
    ASSERT_TRUE(s1.apply(stream[i]).applied);

  const std::string bytes = s1.serialize();
  std::unique_ptr<EcoSession> s2 = EcoSession::resume(bytes, {});
  EXPECT_EQ(s2->id(), "s1");
  EXPECT_EQ(s2->chain(), s1.chain());
  EXPECT_EQ(s2->deltas_applied(), s1.deltas_applied());
  EXPECT_EQ(s2->serialize(), bytes);

  // A killed-and-resumed session continues exactly like the original.
  const Delta& last = stream.back();
  const EcoDeltaResult a = s1.apply(last);
  const EcoDeltaResult b = s2->apply(last);
  ASSERT_TRUE(a.applied && b.applied);
  EXPECT_EQ(a.chain, b.chain);
  EXPECT_EQ(a.crit_ns, b.crit_ns);
  EXPECT_EQ(a.wirelength, b.wirelength);
  EXPECT_EQ(s1.serialize(), s2->serialize());
  EXPECT_EQ(s2->cold_rebuild_audit(), "");
}

TEST(EcoSession, ResumeRejectsCorruptBytes) {
  FlowSnapshot base = make_placed_snapshot("tseng", 0.05, 7);
  EcoSession s("s1", std::move(base), {});
  ASSERT_TRUE(s.apply(delay_model_delta(1.1, 0.5, 0.3, 0.2)).applied);
  const std::string bytes = s.serialize();

  EXPECT_THROW(EcoSession::resume("", {}), EcoError);
  EXPECT_THROW(
      EcoSession::resume(std::string_view(bytes.data(), bytes.size() / 2), {}),
      EcoError);
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_THROW(EcoSession::resume(flipped, {}), EcoError);
  // A flow snapshot is not a session file.
  EXPECT_THROW(
      EcoSession::resume(serialize_snapshot(
                             make_placed_snapshot("tseng", 0.05, 7)),
                         {}),
      EcoError);
}

// ---- session manager / JSONL surface ---------------------------------------

TEST(SessionManager, ClassifiesAndParsesOpLines) {
  EXPECT_TRUE(is_session_op_line(R"({"op":"query","session":"a"})"));
  EXPECT_FALSE(is_session_op_line(R"({"id":"j1","circuit":"tseng"})"));
  EXPECT_FALSE(is_session_op_line("not json at all"));

  const SessionOp op = parse_session_op(
      R"({"op":"apply_delta","session":"s1","delta":"move_cell","cell":5,"x":2,"y":3})");
  EXPECT_EQ(op.op, "apply_delta");
  EXPECT_EQ(op.session, "s1");
  ASSERT_TRUE(op.has_delta);
  EXPECT_EQ(op.delta.kind, DeltaKind::kMoveCell);
  EXPECT_EQ(op.delta.cell, 5);
  EXPECT_EQ(op.delta.x, 2);
  EXPECT_EQ(op.delta.y, 3);

  EXPECT_THROW(parse_session_op(R"({"op":"query","session":"a","bogus":1})"),
               JsonlError);
  EXPECT_THROW(parse_session_op(R"({"session":"a"})"), EcoError);
  EXPECT_THROW(parse_session_op(R"({"op":"query","session":"../evil"})"),
               EcoError);
  EXPECT_THROW(
      parse_session_op(
          R"({"op":"apply_delta","session":"a","delta":"resize"})"),
      EcoError);
}

TEST(SessionManager, OpenApplyCloseResumeRoundTrip) {
  TempDir dir("mgr");
  SessionManagerOptions mopt;
  mopt.sessions_dir = dir.path;
  mopt.cold_audit = true;
  SessionManager mgr(mopt);

  const std::string opened = mgr.handle_line(
      R"({"op":"open_session","session":"r1","circuit":"tseng","scale":0.05,"seed":3})");
  auto obj = parse_jsonl_object(opened);
  ASSERT_TRUE(obj.at("ok").b) << opened;
  EXPECT_EQ(obj.at("op").str, "open_session");
  EXPECT_EQ(obj.at("circuit").str, "tseng");
  EXPECT_EQ(mgr.open_sessions(), 1u);

  const std::string applied = mgr.handle_line(
      R"({"op":"apply_delta","session":"r1","delta":"set_delay_model","wire_delay_per_unit":1.05,"logic_delay":0.5,"io_delay":0.3,"ff_delay":0.2})");
  obj = parse_jsonl_object(applied);
  ASSERT_TRUE(obj.at("ok").b) << applied;
  EXPECT_TRUE(obj.at("applied").b);
  EXPECT_EQ(mgr.deltas_persisted(), 1u);
  EXPECT_TRUE(std::filesystem::exists(dir.path + "/r1.ecs"));

  const std::string queried =
      mgr.handle_line(R"({"op":"query","session":"r1"})");
  obj = parse_jsonl_object(queried);
  ASSERT_TRUE(obj.at("ok").b) << queried;
  EXPECT_EQ(obj.at("deltas_applied").num, 1.0);

  // Failure paths come back as lines, never as exceptions.
  const std::string unknown =
      mgr.handle_line(R"({"op":"query","session":"nope"})");
  obj = parse_jsonl_object(unknown);
  EXPECT_FALSE(obj.at("ok").b);
  const std::string malformed = mgr.handle_line("{broken");
  obj = parse_jsonl_object(malformed);
  EXPECT_FALSE(obj.at("ok").b);
  const std::string no_delta =
      mgr.handle_line(R"({"op":"apply_delta","session":"r1"})");
  obj = parse_jsonl_object(no_delta);
  EXPECT_FALSE(obj.at("ok").b);

  const std::string closed =
      mgr.handle_line(R"({"op":"close_session","session":"r1"})");
  obj = parse_jsonl_object(closed);
  ASSERT_TRUE(obj.at("ok").b) << closed;
  EXPECT_EQ(obj.at("cold_audit").str, "ok");
  EXPECT_EQ(mgr.open_sessions(), 0u);

  // Reopening the same id resumes from the persisted .ecs file — the spec on
  // the line is ignored in favor of the journaled state.
  const std::string reopened = mgr.handle_line(
      R"({"op":"open_session","session":"r1","circuit":"tseng","scale":0.05,"seed":3})");
  obj = parse_jsonl_object(reopened);
  ASSERT_TRUE(obj.at("ok").b) << reopened;
  EXPECT_TRUE(obj.at("resumed").b);
  const auto reopened_obj = parse_jsonl_object(reopened);
  EXPECT_EQ(reopened_obj.at("deltas_applied").num, 1.0);
}

TEST(SessionManager, CrashHookCountsPersistedDeltas) {
  TempDir dir("crash");
  SessionManagerOptions mopt;
  mopt.sessions_dir = dir.path;
  mopt.crash_after_deltas = 1;
  SessionManager mgr(mopt);
  EXPECT_FALSE(mgr.crash_requested());
  ASSERT_TRUE(parse_jsonl_object(mgr.handle_line(
                  R"({"op":"open_session","session":"c1","circuit":"tseng","scale":0.05,"seed":3})"))
                  .at("ok")
                  .b);
  EXPECT_FALSE(mgr.crash_requested());
  ASSERT_TRUE(parse_jsonl_object(mgr.handle_line(
                  R"({"op":"apply_delta","session":"c1","delta":"set_delay_model","wire_delay_per_unit":1.2,"logic_delay":0.5,"io_delay":0.3,"ff_delay":0.2})"))
                  .at("ok")
                  .b);
  EXPECT_TRUE(mgr.crash_requested());
}

}  // namespace
}  // namespace repro
