#include <gtest/gtest.h>

#include <vector>

#include "embed/embed_elmore.h"
#include "util/rng.h"

namespace repro {
namespace {

ElmoreOptions simple_model() {
  ElmoreOptions opt;
  opt.model.r_per_unit = 2.0;
  opt.model.c_per_unit = 1.0;
  opt.model.r_out = 0.0;   // pure-wire quadratic delay
  opt.model.c_in = 0.0;
  opt.model.gate_delay = 1.0;
  return opt;
}

TEST(Elmore, QuadraticWireReproducesFig7Numbers) {
  // With r=2, c=1, R_out=0 the delay of an unbranched run of length L is
  // exactly L^2 — the quadratic-delay assumption of the Fig. 7 worked
  // example. Rebuild that example through the Elmore embedder.
  EmbeddingGraph g = EmbeddingGraph::make_line(5, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId s = tree.add_leaf("s", {0, 0}, 0.0, true);
  TreeNodeId x = tree.add_gate("x", {s}, 1.0);
  TreeNodeId t = tree.add_gate("t", {x}, 1.0);
  tree.set_root(t, {4, 0});

  ElmoreOptions opt = simple_model();
  opt.placement_cost = [&g, x](TreeNodeId i, EmbedVertexId j) {
    const int slot = g.point(j).x;
    if (i != x) return 0.0;
    return (slot == 0 || slot == 4) ? 1e6 : static_cast<double>(slot);
  };
  ElmoreEmbedder e(tree, g, opt);
  ASSERT_TRUE(e.run());
  // Same front as the linear embedder with quadratic stems: (5,12), (6,10).
  ASSERT_EQ(e.tradeoff().size(), 2u);
  EXPECT_DOUBLE_EQ(e.tradeoff()[0].cost, 5.0);
  EXPECT_DOUBLE_EQ(e.tradeoff()[0].t, 12.0);
  EXPECT_DOUBLE_EQ(e.tradeoff()[1].cost, 6.0);
  EXPECT_DOUBLE_EQ(e.tradeoff()[1].t, 10.0);
}

TEST(Elmore, ExtractionMatchesFig7) {
  EmbeddingGraph g = EmbeddingGraph::make_line(5, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId s = tree.add_leaf("s", {0, 0}, 0.0, true);
  TreeNodeId x = tree.add_gate("x", {s}, 1.0);
  TreeNodeId t = tree.add_gate("t", {x}, 1.0);
  tree.set_root(t, {4, 0});
  ElmoreOptions opt = simple_model();
  opt.placement_cost = [&g, x](TreeNodeId i, EmbedVertexId j) {
    const int slot = g.point(j).x;
    if (i != x) return 0.0;
    return (slot == 0 || slot == 4) ? 1e6 : static_cast<double>(slot);
  };
  ElmoreEmbedder e(tree, g, opt);
  ASSERT_TRUE(e.run());
  auto cheap = e.extract(0);
  EXPECT_EQ(g.point(cheap.at(x)), (Point{1, 0}));
  auto fast = e.extract(1);
  EXPECT_EQ(g.point(fast.at(x)), (Point{2, 0}));
}

TEST(Elmore, UpstreamResistanceMakesSegmentOrderMatter) {
  // d(L) with R0 > 0 is c*L*R0 + L^2 (superlinear): buffering (a gate) in
  // the middle must reduce delay, and the embedder must discover it.
  EmbeddingGraph g = EmbeddingGraph::make_line(9, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId s = tree.add_leaf("s", {0, 0}, 0.0, true);
  TreeNodeId buf = tree.add_gate("buf", {s}, 0.0);
  TreeNodeId t = tree.add_gate("t", {buf}, 0.0);
  tree.set_root(t, {8, 0});

  ElmoreOptions opt = simple_model();
  ElmoreEmbedder e(tree, g, opt);
  ASSERT_TRUE(e.run());
  int best = e.pick_fastest();
  // Unbuffered 8-run: 64. Split 4+4: 16 + 16 = 32.
  EXPECT_DOUBLE_EQ(e.tradeoff()[best].t, 32.0);
  auto emb = e.extract(best);
  EXPECT_EQ(g.point(emb.at(buf)).x, 4);
}

TEST(Elmore, JoinResetsUpstreamResistance) {
  // After a gate, the wire sees only r_out again: two 2-runs with a gate
  // between differ from one 4-run.
  ElmoreDelayModel m;
  m.r_per_unit = 1.0;
  m.c_per_unit = 1.0;
  m.r_out = 0.5;
  // one 4-run: c*L*(R0 + rL/2) = 4*(0.5 + 2) = 10.
  EXPECT_DOUBLE_EQ(m.segment_delay(0.5, 4), 10.0);
  // two 2-runs: each 2*(0.5 + 1) = 3; total 6 (+gate delay).
  EXPECT_DOUBLE_EQ(2 * m.segment_delay(0.5, 2), 6.0);
}

TEST(Elmore, CheapestWithinBound) {
  EmbeddingGraph g = EmbeddingGraph::make_line(5, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId s = tree.add_leaf("s", {0, 0}, 0.0, true);
  TreeNodeId x = tree.add_gate("x", {s}, 1.0);
  TreeNodeId t = tree.add_gate("t", {x}, 1.0);
  tree.set_root(t, {4, 0});
  ElmoreOptions opt = simple_model();
  opt.placement_cost = [&g, x](TreeNodeId i, EmbedVertexId j) {
    const int slot = g.point(j).x;
    if (i != x) return 0.0;
    return (slot == 0 || slot == 4) ? 1e6 : static_cast<double>(slot);
  };
  ElmoreEmbedder e(tree, g, opt);
  ASSERT_TRUE(e.run());
  EXPECT_EQ(e.pick_cheapest_within(15.0), 0);
  EXPECT_EQ(e.pick_cheapest_within(11.0), 1);
  EXPECT_EQ(e.pick_cheapest_within(5.0), -1);
  EXPECT_EQ(e.pick_fastest(), 1);
}

TEST(Elmore, InputCapacitanceLoadsChildResistance) {
  // With c_in > 0, a child arriving through a long (high-R) run pays an
  // extra c_in * R penalty at the gate input; placing the gate closer to the
  // source reduces it.
  EmbeddingGraph g = EmbeddingGraph::make_line(5, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId s = tree.add_leaf("s", {0, 0}, 0.0, true);
  TreeNodeId x = tree.add_gate("x", {s}, 0.0);
  TreeNodeId t = tree.add_gate("t", {x}, 0.0);
  tree.set_root(t, {4, 0});

  ElmoreOptions opt = simple_model();
  opt.model.c_in = 1.0;
  ElmoreEmbedder e(tree, g, opt);
  ASSERT_TRUE(e.run());
  int best = e.pick_fastest();
  // Gate at position p: t = p^2 + c_in*(2p) + (4-p)^2 + c_in*(2*(4-p))
  //                       = p^2 + (4-p)^2 + 8. Min at p = 2: 4+4+8 = 16.
  EXPECT_DOUBLE_EQ(e.tradeoff()[best].t, 16.0);
}

TEST(Elmore, DominanceKeepsIncomparableTriples) {
  // Direct unit test of the 3-D dominance through the embedder: a label
  // with lower r but higher t must coexist with its converse, which shows up
  // as a larger tradeoff set than the 2-D projection would allow.
  // (Covered implicitly above; here we check fronts are cost-sorted.)
  EmbeddingGraph g = EmbeddingGraph::make_grid({0, 0, 3, 3}, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId a = tree.add_leaf("a", {0, 0}, 0.0, true);
  TreeNodeId b = tree.add_leaf("b", {3, 0}, 1.0, true);
  TreeNodeId x = tree.add_gate("x", {a, b}, 0.5);
  TreeNodeId t = tree.add_gate("t", {x}, 0.5);
  tree.set_root(t, {3, 3});
  ElmoreOptions opt = simple_model();
  opt.placement_cost = [](TreeNodeId, EmbedVertexId) { return 1.0; };
  ElmoreEmbedder e(tree, g, opt);
  ASSERT_TRUE(e.run());
  ASSERT_FALSE(e.tradeoff().empty());
  for (std::size_t k = 1; k < e.tradeoff().size(); ++k) {
    EXPECT_GE(e.tradeoff()[k].cost, e.tradeoff()[k - 1].cost);
    EXPECT_LT(e.tradeoff()[k].t, e.tradeoff()[k - 1].t);
  }
}

}  // namespace
}  // namespace repro
