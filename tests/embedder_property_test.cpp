// Property tests: the DP embedder must produce exactly the Pareto front that
// exhaustive enumeration of all internal-node placements produces, for both
// the 2-D (cost, max-arrival) objective and the Lex-N objectives, on random
// trees over full grids (where graph distance = Manhattan distance).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "embed/embedder.h"
#include "embed/embedding_graph.h"
#include "embed/fanin_tree.h"
#include "util/rng.h"

namespace repro {
namespace {

struct RandomCase {
  FaninTree tree;
  std::vector<TreeNodeId> internals;  // excluding root
  TreeNodeId root;
  Rect region;
  std::vector<std::vector<double>> pcost;  // [tree node][vertex]
};

/// Random tree with `num_internal` movable gates over a small grid.
RandomCase make_case(Rng& rng, int num_internal, int w, int h) {
  RandomCase rc;
  rc.region = Rect{0, 0, w - 1, h - 1};
  auto rand_point = [&] {
    return Point{rng.next_int(0, w - 1), rng.next_int(0, h - 1)};
  };

  // Build bottom-up: maintain a pool of subtree roots, join random subsets.
  std::vector<TreeNodeId> pool;
  const int num_leaves = num_internal + 1 + rng.next_int(0, 2);
  for (int i = 0; i < num_leaves; ++i)
    pool.push_back(rc.tree.add_leaf("l" + std::to_string(i), rand_point(),
                                    rng.next_double() * 4.0, true));
  for (int i = 0; i < num_internal; ++i) {
    const int arity =
        std::min<int>(static_cast<int>(pool.size()), 1 + rng.next_int(1, 2));
    std::vector<TreeNodeId> kids;
    for (int k = 0; k < arity; ++k) {
      std::size_t pick = rng.next_below(pool.size());
      kids.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<long>(pick));
    }
    TreeNodeId gate = rc.tree.add_gate("g" + std::to_string(i), std::move(kids),
                                       rng.next_double() * 2.0);
    rc.internals.push_back(gate);
    pool.push_back(gate);
  }
  rc.root = rc.tree.add_gate("root", pool, 1.0);
  rc.tree.set_root(rc.root, rand_point());

  rc.pcost.resize(rc.tree.size());
  for (std::size_t n = 0; n < rc.tree.size(); ++n) {
    rc.pcost[n].resize(static_cast<std::size_t>(w) * h);
    for (auto& v : rc.pcost[n]) v = rng.next_int(0, 3);
  }
  return rc;
}

struct BruteSolution {
  double cost;
  DelayVec delay;
};

/// Exhaustive evaluation over all placements of the internal nodes (root
/// fixed). Wire cost/delay = Manhattan (equals grid-graph shortest path).
std::vector<BruteSolution> brute_force(const RandomCase& rc,
                                       const EmbeddingGraph& g, int lex) {
  std::vector<BruteSolution> all;
  const std::size_t nv = g.num_vertices();
  std::vector<std::size_t> assign(rc.internals.size(), 0);

  auto vertex_of = [&](TreeNodeId n) -> EmbedVertexId {
    for (std::size_t k = 0; k < rc.internals.size(); ++k)
      if (rc.internals[k] == n)
        return EmbedVertexId(static_cast<EmbedVertexId::value_type>(assign[k]));
    if (n == rc.root) return g.vertex_at(rc.tree.node(n).fixed_loc);
    return g.vertex_at(rc.tree.node(n).fixed_loc);
  };

  // Recursive evaluation: returns (cost, top-lex delay multiset) of subtree.
  auto eval = [&](auto&& self, TreeNodeId n) -> std::pair<double, DelayVec> {
    const FaninTreeNode& node = rc.tree.node(n);
    if (node.is_leaf()) return {0.0, DelayVec::single(node.leaf_arrival)};
    EmbedVertexId me = vertex_of(n);
    Point mp = g.point(me);
    double cost = rc.pcost[n.index()][me.index()];
    DelayVec merged;
    for (TreeNodeId c : node.children) {
      auto [ccost, cdelay] = self(self, c);
      Point cp = g.point(vertex_of(c));
      const double wire = manhattan(cp, mp);
      cost += ccost + wire;
      cdelay.shift(wire);
      merged = merged.merged_with(cdelay, lex);
    }
    merged.shift(node.gate_delay);
    return {cost, merged};
  };

  while (true) {
    auto [cost, delay] = eval(eval, rc.root);
    all.push_back(BruteSolution{cost, delay});
    // Advance the mixed-radix counter.
    std::size_t k = 0;
    while (k < assign.size() && ++assign[k] == nv) assign[k++] = 0;
    if (k == assign.size()) break;
  }
  return all;
}

/// Pareto filter matching the embedder's dominance (cost vs lex delay).
std::vector<BruteSolution> pareto(std::vector<BruteSolution> all) {
  std::sort(all.begin(), all.end(), [](const BruteSolution& a, const BruteSolution& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.delay.lex_compare(b.delay) < 0;
  });
  std::vector<BruteSolution> front;
  for (const auto& s : all) {
    bool dominated = false;
    for (const auto& f : front)
      if (f.cost <= s.cost + 1e-9 && f.delay.lex_compare(s.delay) <= 0) {
        dominated = true;
        break;
      }
    if (!dominated) front.push_back(s);
  }
  return front;
}

class EmbedderVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(EmbedderVsBruteForce, ParetoFrontsMatch2D) {
  Rng rng(1000 + GetParam());
  const int w = 3 + static_cast<int>(rng.next_below(2));
  const int h = 3;
  RandomCase rc = make_case(rng, 1 + static_cast<int>(rng.next_below(3)), w, h);
  EmbeddingGraph g = EmbeddingGraph::make_grid(rc.region, 1.0, 1.0);

  FaninTreeEmbedder e(
      rc.tree, g,
      [&rc](TreeNodeId i, EmbedVertexId j) { return rc.pcost[i.index()][j.index()]; },
      EmbedOptions{});
  ASSERT_TRUE(e.run());
  auto front = pareto(brute_force(rc, g, 1));

  ASSERT_EQ(e.tradeoff().size(), front.size()) << "Pareto front size mismatch";
  for (std::size_t k = 0; k < front.size(); ++k) {
    EXPECT_NEAR(e.tradeoff()[k].cost, front[k].cost, 1e-9);
    EXPECT_NEAR(e.tradeoff()[k].delay.primary(), front[k].delay.primary(), 1e-9);
  }
}

TEST_P(EmbedderVsBruteForce, ParetoFrontsMatchLex3) {
  Rng rng(9000 + GetParam());
  RandomCase rc = make_case(rng, 1 + static_cast<int>(rng.next_below(2)), 3, 3);
  EmbeddingGraph g = EmbeddingGraph::make_grid(rc.region, 1.0, 1.0);

  EmbedOptions opt;
  opt.lex_order = 3;
  FaninTreeEmbedder e(
      rc.tree, g,
      [&rc](TreeNodeId i, EmbedVertexId j) { return rc.pcost[i.index()][j.index()]; },
      opt);
  ASSERT_TRUE(e.run());
  auto front = pareto(brute_force(rc, g, 3));

  ASSERT_EQ(e.tradeoff().size(), front.size());
  for (std::size_t k = 0; k < front.size(); ++k) {
    EXPECT_NEAR(e.tradeoff()[k].cost, front[k].cost, 1e-9);
    EXPECT_EQ(e.tradeoff()[k].delay.lex_compare(front[k].delay), 0)
        << "lex delay vector mismatch at front position " << k;
  }
}

TEST_P(EmbedderVsBruteForce, ExtractionIsConsistentWithSignature) {
  // Re-evaluate the extracted placement by hand; its cost/delay must equal
  // the solution signature (the reconstruction invariant).
  Rng rng(5000 + GetParam());
  RandomCase rc = make_case(rng, 1 + static_cast<int>(rng.next_below(3)), 4, 3);
  EmbeddingGraph g = EmbeddingGraph::make_grid(rc.region, 1.0, 1.0);

  FaninTreeEmbedder e(
      rc.tree, g,
      [&rc](TreeNodeId i, EmbedVertexId j) { return rc.pcost[i.index()][j.index()]; },
      EmbedOptions{});
  ASSERT_TRUE(e.run());

  for (std::size_t k = 0; k < e.tradeoff().size(); ++k) {
    auto emb = e.extract(static_cast<int>(k));
    // Recompute delay/cost from the embedding.
    auto eval = [&](auto&& self, TreeNodeId n) -> std::pair<double, double> {
      const FaninTreeNode& node = rc.tree.node(n);
      if (node.is_leaf()) return {0.0, node.leaf_arrival};
      Point mp = g.point(emb.at(n));
      double cost = rc.pcost[n.index()][emb.at(n).index()];
      double arr = 0;
      for (TreeNodeId c : node.children) {
        auto [ccost, carr] = self(self, c);
        Point cp = g.point(emb.at(c));
        cost += ccost + manhattan(cp, mp);
        arr = std::max(arr, carr + manhattan(cp, mp));
      }
      return {cost, arr + node.gate_delay};
    };
    auto [cost, arr] = eval(eval, rc.root);
    // The reconstructed embedding can only be as good or better than the
    // label (wires in the label may route longer than Manhattan only if
    // detours were priced in; on a full grid they never are).
    EXPECT_NEAR(cost, e.tradeoff()[k].cost, 1e-9);
    EXPECT_NEAR(arr, e.tradeoff()[k].delay.primary(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmbedderVsBruteForce, ::testing::Range(0, 12));

}  // namespace
}  // namespace repro
