#include <gtest/gtest.h>

#include <cmath>

#include "embed/embedder.h"
#include "embed/embedding_graph.h"
#include "embed/fanin_tree.h"

namespace repro {
namespace {

/// The paper's worked example (Fig. 7): a 5-slot line, tree s -> x -> t with
/// s fixed at slot 0 and t at slot 4; wire cost = length; wire delay
/// quadratic in the unbranched run length; gate delay 1; placement cost of x
/// = slot index; s and t free.
struct WorkedExample {
  EmbeddingGraph graph = EmbeddingGraph::make_line(5, /*cost*/ 1.0, /*len*/ 1.0);
  FaninTree tree;
  TreeNodeId s, x, t;

  WorkedExample() {
    s = tree.add_leaf("s", {0, 0}, 0.0, true);
    x = tree.add_gate("x", {s}, 1.0);
    t = tree.add_gate("t", {x}, 1.0);
    tree.set_root(t, {4, 0});
  }

  EmbedOptions options() const {
    EmbedOptions opt;
    opt.stem_delay = [](int len) { return static_cast<double>(len) * len; };
    return opt;
  }

  double pcost(TreeNodeId i, EmbedVertexId j) const {
    if (i != x) return 0.0;
    const int slot = graph.point(j).x;
    // Slots 0 and 4 hold the fixed s and t; the example implicitly keeps x
    // off them (its candidate solutions run over slots 1..3 only).
    if (slot == 0 || slot == 4) return 1e6;
    return static_cast<double>(slot);
  }
};

TEST(WorkedExampleFig7, RootTradeoffMatchesPaper) {
  WorkedExample w;
  FaninTreeEmbedder e(
      w.tree, w.graph,
      [&w](TreeNodeId i, EmbedVertexId j) { return w.pcost(i, j); }, w.options());
  ASSERT_TRUE(e.run());
  // Paper: A[t][4] = {(5, 12), (6, 10)}.
  ASSERT_EQ(e.tradeoff().size(), 2u);
  EXPECT_DOUBLE_EQ(e.tradeoff()[0].cost, 5.0);
  EXPECT_DOUBLE_EQ(e.tradeoff()[0].delay.primary(), 12.0);
  EXPECT_DOUBLE_EQ(e.tradeoff()[1].cost, 6.0);
  EXPECT_DOUBLE_EQ(e.tradeoff()[1].delay.primary(), 10.0);
}

TEST(WorkedExampleFig7, CheapestFastEnoughSelection) {
  WorkedExample w;
  FaninTreeEmbedder e(
      w.tree, w.graph,
      [&w](TreeNodeId i, EmbedVertexId j) { return w.pcost(i, j); }, w.options());
  ASSERT_TRUE(e.run());
  // Paper: with a circuit lower bound of 15, choose (5,12) over (6,10).
  int pick = e.pick_cheapest_within(15.0);
  ASSERT_GE(pick, 0);
  EXPECT_DOUBLE_EQ(e.tradeoff()[pick].cost, 5.0);
  // With a bound of 11, only the fast solution qualifies.
  pick = e.pick_cheapest_within(11.0);
  ASSERT_GE(pick, 0);
  EXPECT_DOUBLE_EQ(e.tradeoff()[pick].cost, 6.0);
  // Nothing is faster than 9.
  EXPECT_EQ(e.pick_cheapest_within(9.0), -1);
}

TEST(WorkedExampleFig7, ExtractionPlacesXPerPaper) {
  WorkedExample w;
  FaninTreeEmbedder e(
      w.tree, w.graph,
      [&w](TreeNodeId i, EmbedVertexId j) { return w.pcost(i, j); }, w.options());
  ASSERT_TRUE(e.run());
  // Cheap solution: x at slot 1. Fast solution: x at slot 2.
  auto cheap = e.extract(0);
  EXPECT_EQ(w.graph.point(cheap.at(w.x)), (Point{1, 0}));
  EXPECT_EQ(w.graph.point(cheap.at(w.t)), (Point{4, 0}));
  EXPECT_EQ(w.graph.point(cheap.at(w.s)), (Point{0, 0}));
  auto fast = e.extract(1);
  EXPECT_EQ(w.graph.point(fast.at(w.x)), (Point{2, 0}));
}

// ---------------------------------------------------------------------------
// Linear-delay embedding on grids.

TEST(Embedder, SingleGateSitsOnShortestPath) {
  // a(0,0) -> g -> root(4,0): with zero placement cost, any position on the
  // line gives wire 4; delay = arr + 4*wd + gates.
  EmbeddingGraph g = EmbeddingGraph::make_grid({0, 0, 4, 2}, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId a = tree.add_leaf("a", {0, 0}, 0.0, true);
  TreeNodeId gate = tree.add_gate("g", {a}, 1.0);
  TreeNodeId root = tree.add_gate("root", {gate}, 1.0);
  tree.set_root(root, {4, 0});

  FaninTreeEmbedder e(tree, g, nullptr, EmbedOptions{});
  ASSERT_TRUE(e.run());
  int best = e.pick_fastest();
  EXPECT_DOUBLE_EQ(e.tradeoff()[best].delay.primary(), 4.0 + 2.0);
  EXPECT_DOUBLE_EQ(e.tradeoff()[best].cost, 4.0);  // pure wire
  auto emb = e.extract(best);
  Point p = g.point(emb.at(gate));
  EXPECT_EQ(p.y, 0);  // on the straight line
}

TEST(Embedder, BalancesTwoLeaves) {
  // Leaves at (0,0) and (0,4) with equal arrivals; root at (4,2).
  EmbeddingGraph g = EmbeddingGraph::make_grid({0, 0, 4, 4}, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId a = tree.add_leaf("a", {0, 0}, 0.0, true);
  TreeNodeId b = tree.add_leaf("b", {0, 4}, 0.0, true);
  TreeNodeId gate = tree.add_gate("g", {a, b}, 1.0);
  TreeNodeId root = tree.add_gate("root", {gate}, 1.0);
  tree.set_root(root, {4, 2});

  FaninTreeEmbedder e(tree, g, nullptr, EmbedOptions{});
  ASSERT_TRUE(e.run());
  int best = e.pick_fastest();
  // Optimal: gate in the y=2 corridor: 2 + x + 1 + (4-x) + 1 = 8.
  EXPECT_DOUBLE_EQ(e.tradeoff()[best].delay.primary(), 8.0);
  auto emb = e.extract(best);
  EXPECT_EQ(g.point(emb.at(gate)).y, 2);
}

TEST(Embedder, UnequalArrivalsShiftTheGate) {
  // b arrives 4 late: the gate should move toward b to equalize.
  EmbeddingGraph g = EmbeddingGraph::make_grid({0, 0, 6, 0}, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId a = tree.add_leaf("a", {0, 0}, 0.0, true);
  TreeNodeId b = tree.add_leaf("b", {6, 0}, 4.0, true);
  TreeNodeId gate = tree.add_gate("g", {a, b}, 0.0);
  TreeNodeId root = tree.add_gate("root", {gate}, 0.0);
  tree.set_root(root, {3, 0});

  FaninTreeEmbedder e(tree, g, nullptr, EmbedOptions{});
  ASSERT_TRUE(e.run());
  int best = e.pick_fastest();
  auto emb = e.extract(best);
  // Gate at x: max(x, 4 + (6-x)) + |3-x| ties at 7 for x in {3,4,5}; the
  // cheapest of the fastest (x = 3, pure wire cost 6) must win.
  EXPECT_DOUBLE_EQ(e.tradeoff()[best].delay.primary(), 7.0);
  EXPECT_DOUBLE_EQ(e.tradeoff()[best].cost, 6.0);
  EXPECT_EQ(g.point(emb.at(gate)).x, 3);
}

TEST(Embedder, PlacementCostCreatesTradeoff) {
  // A high-cost row (the Fig. 4 shaded region): the cheap solution detours
  // the gate around it; the fast one pays.
  EmbeddingGraph g = EmbeddingGraph::make_grid({0, 0, 4, 2}, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId a = tree.add_leaf("a", {0, 0}, 0.0, true);
  TreeNodeId gate = tree.add_gate("g", {a}, 0.0);
  TreeNodeId root = tree.add_gate("root", {gate}, 0.0);
  tree.set_root(root, {4, 0});
  auto pcost = [&g, gate](TreeNodeId i, EmbedVertexId j) {
    if (i != gate) return 0.0;
    return g.point(j).y == 0 ? 10.0 : 0.0;  // row 0 is expensive for the gate
  };
  FaninTreeEmbedder e(tree, g, pcost, EmbedOptions{});
  ASSERT_TRUE(e.run());
  ASSERT_GE(e.tradeoff().size(), 2u);
  // Cheap: gate off-row (detour 2): cost 6 wire, delay 6.
  EXPECT_DOUBLE_EQ(e.tradeoff()[0].cost, 6.0);
  EXPECT_DOUBLE_EQ(e.tradeoff()[0].delay.primary(), 6.0);
  // Fast: gate on the straight line, paying 10: cost 14, delay 4.
  int fast = e.pick_fastest();
  EXPECT_DOUBLE_EQ(e.tradeoff()[fast].delay.primary(), 4.0);
  EXPECT_DOUBLE_EQ(e.tradeoff()[fast].cost, 14.0);
}

TEST(Embedder, BlockedVerticesAreAvoided) {
  // Block the whole middle column except the top crossing.
  EmbeddingGraph g = EmbeddingGraph::make_grid(
      {0, 0, 4, 4}, 1.0, 1.0, [](Point p) { return p.x == 2 && p.y != 4; });
  FaninTree tree;
  TreeNodeId a = tree.add_leaf("a", {0, 0}, 0.0, true);
  TreeNodeId gate = tree.add_gate("g", {a}, 0.0);
  TreeNodeId root = tree.add_gate("root", {gate}, 0.0);
  tree.set_root(root, {4, 0});
  FaninTreeEmbedder e(tree, g, nullptr, EmbedOptions{});
  ASSERT_TRUE(e.run());
  // Any route must climb to y=4 and back: wire = 4 + 4 + 4 = 12.
  int best = e.pick_fastest();
  EXPECT_DOUBLE_EQ(e.tradeoff()[best].delay.primary(), 12.0);
}

TEST(Embedder, TernaryJoin) {
  EmbeddingGraph g = EmbeddingGraph::make_grid({0, 0, 4, 4}, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId a = tree.add_leaf("a", {0, 0}, 0.0, true);
  TreeNodeId b = tree.add_leaf("b", {0, 4}, 0.0, true);
  TreeNodeId c = tree.add_leaf("c", {4, 0}, 0.0, true);
  TreeNodeId gate = tree.add_gate("g", {a, b, c}, 1.0);
  TreeNodeId root = tree.add_gate("root", {gate}, 1.0);
  tree.set_root(root, {4, 4});
  FaninTreeEmbedder e(tree, g, nullptr, EmbedOptions{});
  ASSERT_TRUE(e.run());
  int best = e.pick_fastest();
  // Gate at center (2,2): slowest leaf 4, +1 gate, +4 wire, +1 root = 10.
  EXPECT_DOUBLE_EQ(e.tradeoff()[best].delay.primary(), 10.0);
}

TEST(Embedder, LeafOutsideGraphFails) {
  EmbeddingGraph g = EmbeddingGraph::make_grid({0, 0, 2, 2}, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId a = tree.add_leaf("a", {9, 9}, 0.0, true);
  TreeNodeId root = tree.add_gate("root", {a}, 1.0);
  tree.set_root(root, {1, 1});
  FaninTreeEmbedder e(tree, g, nullptr, EmbedOptions{});
  EXPECT_FALSE(e.run());
}

TEST(Embedder, MaxLabelsStillFindsASolution) {
  EmbeddingGraph g = EmbeddingGraph::make_grid({0, 0, 6, 6}, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId a = tree.add_leaf("a", {0, 0}, 0.0, true);
  TreeNodeId b = tree.add_leaf("b", {6, 0}, 1.0, true);
  TreeNodeId g1 = tree.add_gate("g1", {a, b}, 1.0);
  TreeNodeId root = tree.add_gate("root", {g1}, 1.0);
  tree.set_root(root, {3, 6});
  auto pcost = [&g](TreeNodeId, EmbedVertexId j) {
    return 0.1 * (g.point(j).x + g.point(j).y);
  };
  EmbedOptions opt;
  opt.max_labels = 2;
  FaninTreeEmbedder pruned(tree, g, pcost, opt);
  ASSERT_TRUE(pruned.run());
  FaninTreeEmbedder exact(tree, g, pcost, EmbedOptions{});
  ASSERT_TRUE(exact.run());
  double fast_pruned = pruned.tradeoff()[pruned.pick_fastest()].delay.primary();
  double fast_exact = exact.tradeoff()[exact.pick_fastest()].delay.primary();
  EXPECT_LE(fast_exact, fast_pruned + 1e-9);
  EXPECT_LE(fast_pruned, fast_exact * 1.5 + 1.0);
}

// ---------------------------------------------------------------------------
// Lex-N subcritical optimization (Section VI).

TEST(EmbedderLex, SubcriticalPathGetsOptimized) {
  // Leaf a is a late reconvergence terminator at the root's own location, so
  // the max arrival is fixed; Lex-2 additionally minimizes b's path.
  EmbeddingGraph g = EmbeddingGraph::make_grid({0, 0, 8, 0}, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId a = tree.add_leaf("a", {0, 0}, 10.0, false);  // terminator
  TreeNodeId b = tree.add_leaf("b", {8, 0}, 0.0, true);
  TreeNodeId gate = tree.add_gate("g", {a, b}, 0.0);
  TreeNodeId root = tree.add_gate("root", {gate}, 0.0);
  tree.set_root(root, {0, 0});

  EmbedOptions lex2;
  lex2.lex_order = 2;
  FaninTreeEmbedder e(tree, g, nullptr, lex2);
  ASSERT_TRUE(e.run());
  int best = e.pick_fastest();
  // Gate at x: a-path = 10 + 2x, b-path = (8-x) + x = 8. Lex minimizes the
  // max first (x = 0 -> 10), then the subcritical (8).
  const DelayVec& d = e.tradeoff()[best].delay;
  ASSERT_EQ(d.n, 2);
  EXPECT_DOUBLE_EQ(d.v[0], 10.0);
  EXPECT_DOUBLE_EQ(d.v[1], 8.0);
  auto emb = e.extract(best);
  EXPECT_EQ(g.point(emb.at(gate)).x, 0);
}

TEST(EmbedderLex, DelayVecMergeKeepsLargest) {
  DelayVec a = DelayVec::pair(10, 4);
  DelayVec b = DelayVec::pair(8, 7);
  DelayVec m = a.merged_with(b, 3);
  ASSERT_EQ(m.n, 3);
  EXPECT_DOUBLE_EQ(m.v[0], 10);
  EXPECT_DOUBLE_EQ(m.v[1], 8);
  EXPECT_DOUBLE_EQ(m.v[2], 7);
}

TEST(EmbedderLex, MergeTruncates) {
  DelayVec a = DelayVec::pair(10, 9);
  DelayVec b = DelayVec::pair(8, 7);
  DelayVec m = a.merged_with(b, 2);
  ASSERT_EQ(m.n, 2);
  EXPECT_DOUBLE_EQ(m.v[0], 10);
  EXPECT_DOUBLE_EQ(m.v[1], 9);
}

TEST(EmbedderLex, LexCompareOrdering) {
  EXPECT_LT(DelayVec::pair(5, 3).lex_compare(DelayVec::pair(5, 4)), 0);
  EXPECT_GT(DelayVec::pair(6, 0).lex_compare(DelayVec::pair(5, 9)), 0);
  EXPECT_EQ(DelayVec::pair(5, 3).lex_compare(DelayVec::pair(5, 3)), 0);
  // Shorter vectors are better when prefixes tie.
  EXPECT_LT(DelayVec::single(5).lex_compare(DelayVec::pair(5, 1)), 0);
}

TEST(EmbedderLex, ShiftMovesAllEntries) {
  DelayVec d = DelayVec::pair(5, 3);
  d.shift(2.0);
  EXPECT_DOUBLE_EQ(d.v[0], 7);
  EXPECT_DOUBLE_EQ(d.v[1], 5);
}

TEST(EmbedderMc, CriticalInputWeightPropagates) {
  // Leaves: c (critical real input), d (late terminator). Lex-mc tracks the
  // delay from c separately.
  EmbeddingGraph g = EmbeddingGraph::make_grid({0, 0, 4, 0}, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId c = tree.add_leaf("c", {0, 0}, 0.0, true);
  TreeNodeId d = tree.add_leaf("d", {4, 0}, 6.0, false);
  TreeNodeId gate = tree.add_gate("g", {c, d}, 1.0);
  TreeNodeId root = tree.add_gate("root", {gate}, 1.0);
  tree.set_root(root, {2, 0});

  EmbedOptions mc;
  mc.lex_mc = true;
  FaninTreeEmbedder e(tree, g, nullptr, mc);
  ASSERT_TRUE(e.run());
  int best = e.pick_fastest();
  const DelayVec& dv = e.tradeoff()[best].delay;
  ASSERT_EQ(dv.n, 2);
  // Gate at x: t = max(x, 6 + (4-x)) + 1 + |2-x| + 1; tc = x + 1 + |2-x| + 1.
  // t ties at 10 for x in {2,3,4}; lex order then minimizes tc, picking
  // x = 2 with tc = 4 — exactly the mc variant's point.
  EXPECT_DOUBLE_EQ(dv.v[0], 10.0);
  EXPECT_DOUBLE_EQ(dv.v[1], 4.0);
}

TEST(EmbedderOverlap, BranchingBitPreventsStacking) {
  EmbeddingGraph g = EmbeddingGraph::make_grid({0, 0, 3, 0}, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId a = tree.add_leaf("a", {0, 0}, 0.0, true);
  TreeNodeId g1 = tree.add_gate("g1", {a}, 0.0);
  TreeNodeId g2 = tree.add_gate("g2", {g1}, 0.0);
  TreeNodeId root = tree.add_gate("root", {g2}, 0.0);
  tree.set_root(root, {3, 0});

  EmbedOptions avoid;
  avoid.overlap_avoidance = true;
  avoid.branch_capacity = 1;
  FaninTreeEmbedder e(tree, g, nullptr, avoid);
  ASSERT_TRUE(e.run());
  for (std::size_t k = 0; k < e.tradeoff().size(); ++k) {
    auto emb = e.extract(static_cast<int>(k));
    EXPECT_NE(emb.at(g1), emb.at(g2))
        << "overlap avoidance must separate parent and child";
  }
}

TEST(EmbedderOverlap, CapacityTwoAllowsOnePair) {
  EmbeddingGraph g = EmbeddingGraph::make_grid({0, 0, 3, 0}, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId a = tree.add_leaf("a", {0, 0}, 0.0, true);
  TreeNodeId g1 = tree.add_gate("g1", {a}, 0.0);
  TreeNodeId g2 = tree.add_gate("g2", {g1}, 0.0);
  TreeNodeId root = tree.add_gate("root", {g2}, 0.0);
  tree.set_root(root, {3, 0});

  // Make vertex 0 strictly preferable for both gates so the cheapest
  // solution must stack them there.
  auto pcost = [&g](TreeNodeId, EmbedVertexId j) {
    return g.point(j).x == 0 ? 0.0 : 5.0;
  };
  EmbedOptions avoid;
  avoid.overlap_avoidance = true;
  avoid.branch_capacity = 2;  // hierarchical FPGA: 2 LUTs per CLB
  FaninTreeEmbedder e(tree, g, pcost, avoid);
  ASSERT_TRUE(e.run());
  auto cheapest = e.extract(0);
  EXPECT_EQ(cheapest.at(g1), cheapest.at(g2));
  EXPECT_EQ(g.point(cheapest.at(g1)), (Point{0, 0}));
}

TEST(EmbedderRoot, RelocatableRootImprovesDelay) {
  EmbeddingGraph g = EmbeddingGraph::make_grid({0, 0, 8, 0}, 1.0, 1.0);
  FaninTree tree;
  TreeNodeId a = tree.add_leaf("a", {0, 0}, 0.0, true);
  TreeNodeId gate = tree.add_gate("g", {a}, 0.0);
  TreeNodeId root = tree.add_gate("root", {gate}, 0.0);
  tree.set_root(root, {8, 0});

  FaninTreeEmbedder fixed(tree, g, nullptr, EmbedOptions{});
  ASSERT_TRUE(fixed.run());
  double t_fixed = fixed.tradeoff()[fixed.pick_fastest()].delay.primary();
  EXPECT_DOUBLE_EQ(t_fixed, 8.0);

  EmbedOptions reloc;
  reloc.relocatable_root = true;
  FaninTreeEmbedder moving(tree, g, nullptr, reloc);
  ASSERT_TRUE(moving.run());
  double t_moving = moving.tradeoff()[moving.pick_fastest()].delay.primary();
  EXPECT_DOUBLE_EQ(t_moving, 0.0);  // root can sit on the leaf
}

TEST(Embedder, CriticalInputHeuristic) {
  FaninTree tree;
  TreeNodeId near = tree.add_leaf("near", {1, 0}, 0.0, true);
  TreeNodeId far = tree.add_leaf("far", {9, 0}, 0.0, true);
  TreeNodeId term = tree.add_leaf("term", {9, 9}, 50.0, false);
  TreeNodeId gate = tree.add_gate("g", {near, far, term}, 1.0);
  tree.set_root(tree.add_gate("root", {gate}, 1.0), {0, 0});
  // Critical input considers only real inputs: `far` wins on distance.
  EXPECT_EQ(tree.critical_input(), far);
}

}  // namespace
}  // namespace repro
