// Parameterized coverage of the EngineOptions surface: every knob must keep
// the core invariants (functional equivalence, placement legality, never a
// worse final critical path than the input) while steering behavior in the
// documented direction.

#include <gtest/gtest.h>

#include "gen/circuit_gen.h"
#include "netlist/sim.h"
#include "place/annealer.h"
#include "replicate/engine.h"
#include "timing/timing_graph.h"

namespace repro {
namespace {

struct Rig {
  Netlist nl;
  FpgaGrid grid;
  LinearDelayModel dm;
  Placement pl;
  Netlist golden;

  static Netlist make(std::uint64_t seed) {
    CircuitSpec spec;
    spec.num_logic = 120;
    spec.num_inputs = 10;
    spec.num_outputs = 10;
    spec.registered_fraction = 0.25;
    spec.depth = 7;
    spec.cluster_size = 32;
    spec.seed = seed;
    return generate_circuit(spec);
  }

  explicit Rig(std::uint64_t seed = 21)
      : nl(make(seed)),
        grid(FpgaGrid::min_grid_for(nl.num_logic() + 10,
                                    nl.num_input_pads() + nl.num_output_pads())),
        pl([&] {
          AnnealerOptions a;
          a.inner_num = 0.5;
          a.seed = seed;
          return anneal_placement(nl, grid, dm, a);
        }()),
        golden(nl) {}

  void check_invariants(const EngineResult& r) {
    EXPECT_LE(r.final_critical, r.initial_critical + 1e-9);
    EXPECT_TRUE(pl.legal()) << pl.check_legal();
    EXPECT_TRUE(nl.validate().empty()) << nl.validate();
    EXPECT_TRUE(functionally_equivalent(golden, nl, 48, 99));
    EXPECT_GE(r.final_critical, r.lower_bound - 1e-6);
  }
};

TEST(EngineOptions, ConservativeUnificationStillSound) {
  Rig rig;
  EngineOptions opt;
  opt.aggressive_unification = false;
  EngineResult r = run_replication_engine(rig.nl, rig.pl, rig.dm, opt);
  rig.check_invariants(r);
}

TEST(EngineOptions, FfRelocationDisabled) {
  Rig rig;
  EngineOptions opt;
  opt.enable_ff_relocation = false;
  EngineResult r = run_replication_engine(rig.nl, rig.pl, rig.dm, opt);
  rig.check_invariants(r);
  for (const IterationStats& it : r.history) EXPECT_FALSE(it.ff_relocation);
}

TEST(EngineOptions, ZeroSubcriticalBudget) {
  Rig rig;
  EngineOptions opt;
  opt.subcritical_budget = 0.0;
  EngineResult r = run_replication_engine(rig.nl, rig.pl, rig.dm, opt);
  rig.check_invariants(r);
}

TEST(EngineOptions, ExactParetoLists) {
  Rig rig;
  EngineOptions opt;
  opt.max_labels = 0;  // exact DP
  opt.max_iterations = 25;
  EngineResult r = run_replication_engine(rig.nl, rig.pl, rig.dm, opt);
  rig.check_invariants(r);
}

TEST(EngineOptions, TinyRegionMarginStillSound) {
  Rig rig;
  EngineOptions opt;
  opt.region_margin = 0;
  EngineResult r = run_replication_engine(rig.nl, rig.pl, rig.dm, opt);
  rig.check_invariants(r);
}

TEST(EngineOptions, LargeImprovementStepsStillSound) {
  Rig rig;
  EngineOptions opt;
  opt.improvement_step_fraction = 1.0;  // always chase the fastest
  EngineResult r = run_replication_engine(rig.nl, rig.pl, rig.dm, opt);
  rig.check_invariants(r);
}

TEST(EngineOptions, HighReplicationCostSuppressesReplicas) {
  Rig cheap(33);
  EngineOptions copt;
  copt.replication_cost = 0.5;
  EngineResult rc = run_replication_engine(cheap.nl, cheap.pl, cheap.dm, copt);
  cheap.check_invariants(rc);

  Rig costly(33);
  EngineOptions xopt;
  xopt.replication_cost = 1e6;
  EngineResult rx = run_replication_engine(costly.nl, costly.pl, costly.dm, xopt);
  costly.check_invariants(rx);
  EXPECT_LE(rx.total_replicated, rc.total_replicated);
}

TEST(EngineOptions, ZeroIterationsIsIdentity) {
  Rig rig;
  double before = TimingGraph(rig.nl, rig.pl, rig.dm).critical_delay();
  EngineOptions opt;
  opt.max_iterations = 0;
  EngineResult r = run_replication_engine(rig.nl, rig.pl, rig.dm, opt);
  EXPECT_DOUBLE_EQ(r.final_critical, before);
  EXPECT_EQ(r.total_replicated, 0);
  EXPECT_TRUE(functionally_equivalent(rig.golden, rig.nl, 16, 4));
}

TEST(EngineOptions, WirelengthTrackedInResult) {
  Rig rig;
  double wl_before = rig.pl.total_wirelength();
  EngineOptions opt;
  EngineResult r = run_replication_engine(rig.nl, rig.pl, rig.dm, opt);
  EXPECT_NEAR(r.initial_wirelength, wl_before, 1e-9);
  EXPECT_NEAR(r.final_wirelength, rig.pl.total_wirelength(), 1e-9);
  rig.check_invariants(r);
}

class EngineSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineSeedSweep, InvariantsAcrossSeeds) {
  Rig rig(GetParam());
  EngineOptions opt;
  opt.variant = (GetParam() % 2) ? EmbedVariant::kLex3 : EmbedVariant::kRtEmbedding;
  opt.max_iterations = 60;
  EngineResult r = run_replication_engine(rig.nl, rig.pl, rig.dm, opt);
  rig.check_invariants(r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSeedSweep,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107, 108));

}  // namespace
}  // namespace repro
