// Integration tests of the full replication engine (Fig. 10/11 flow) on
// generated circuits: every variant must preserve function, keep the
// placement legal, never worsen the estimated critical path, and expose the
// statistics the paper reports (Fig. 14 history, lower-bound detection).

#include <gtest/gtest.h>

#include "flow/experiment.h"
#include "gen/circuit_gen.h"
#include "netlist/sim.h"
#include "place/annealer.h"
#include "replicate/engine.h"
#include "test_helpers.h"
#include "timing/timing_graph.h"

namespace repro {
namespace {

struct EngineHarness {
  Netlist nl;
  FpgaGrid grid;
  LinearDelayModel dm;  // must precede pl: the annealer reads it
  Placement pl;
  Netlist golden;

  static Netlist make(std::uint64_t seed) {
    CircuitSpec spec;
    spec.num_logic = 90;
    spec.num_inputs = 8;
    spec.num_outputs = 8;
    spec.registered_fraction = 0.25;
    spec.depth = 7;
    spec.seed = seed;
    return generate_circuit(spec);
  }

  explicit EngineHarness(std::uint64_t seed)
      : nl(make(seed)),
        grid(FpgaGrid::min_grid_for(nl.num_logic() + 12,
                                    nl.num_input_pads() + nl.num_output_pads())),
        pl([&] {
          AnnealerOptions opt;
          opt.inner_num = 0.5;
          opt.seed = seed;
          return anneal_placement(nl, grid, dm, opt);
        }()),
        golden(nl) {}
};

class EngineVariants : public ::testing::TestWithParam<EmbedVariant> {};

TEST_P(EngineVariants, PreservesFunctionAndLegality) {
  EngineHarness h(100 + static_cast<int>(GetParam()));
  EngineOptions opt;
  opt.variant = GetParam();
  opt.max_iterations = 30;
  EngineResult r = run_replication_engine(h.nl, h.pl, h.dm, opt);

  EXPECT_LE(r.final_critical, r.initial_critical + 1e-9);
  EXPECT_TRUE(h.pl.legal()) << h.pl.check_legal();
  EXPECT_TRUE(h.nl.validate().empty()) << h.nl.validate();
  EXPECT_TRUE(functionally_equivalent(h.golden, h.nl, 64, 1234));
}

INSTANTIATE_TEST_SUITE_P(AllVariants, EngineVariants,
                         ::testing::Values(EmbedVariant::kRtEmbedding,
                                           EmbedVariant::kLex2,
                                           EmbedVariant::kLex3,
                                           EmbedVariant::kLex4,
                                           EmbedVariant::kLex5,
                                           EmbedVariant::kLexMc));

TEST(Engine, ImprovesAnnealedPlacement) {
  // Averaged over seeds: a single tiny circuit can start near-optimal, but
  // across instances the engine must find real improvement (the paper
  // reports 14% average at full scale).
  double init_total = 0;
  double final_total = 0;
  double best_gain = 0;
  for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
    EngineHarness h(seed);
    EngineOptions opt;
    opt.max_iterations = 60;
    EngineResult r = run_replication_engine(h.nl, h.pl, h.dm, opt);
    init_total += r.initial_critical;
    final_total += r.final_critical;
    best_gain = std::max(best_gain, 1.0 - r.final_critical / r.initial_critical);
  }
  EXPECT_LT(final_total, init_total * 0.995);
  EXPECT_GT(best_gain, 0.02);
}

TEST(Engine, FinalStateMatchesReportedCritical) {
  EngineHarness h(8);
  EngineOptions opt;
  opt.max_iterations = 40;
  EngineResult r = run_replication_engine(h.nl, h.pl, h.dm, opt);
  TimingGraph tg(h.nl, h.pl, h.dm);
  EXPECT_NEAR(tg.critical_delay(), r.final_critical, 1e-9);
}

TEST(Engine, HistoryIsRecorded) {
  EngineHarness h(9);
  EngineOptions opt;
  opt.max_iterations = 25;
  EngineResult r = run_replication_engine(h.nl, h.pl, h.dm, opt);
  ASSERT_FALSE(r.history.empty());
  // Cumulative counters are nondecreasing (the Fig. 14 curves).
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_GE(r.history[i].replicated_cum, r.history[i - 1].replicated_cum);
    EXPECT_GE(r.history[i].unified_cum, r.history[i - 1].unified_cum);
  }
  EXPECT_EQ(r.history.back().replicated_cum, r.total_replicated);
  // Block growth is bounded by the cumulative replication count (the final
  // state may be an earlier best snapshot, so exact equality need not hold).
  EXPECT_LE(static_cast<long>(r.final_blocks) - static_cast<long>(r.initial_blocks),
            static_cast<long>(r.total_replicated));
  EXPECT_GE(r.final_blocks + static_cast<std::size_t>(r.total_unified),
            r.initial_blocks);
}

TEST(Engine, RespectsLowerBoundTermination) {
  EngineHarness h(10);
  EngineOptions opt;
  opt.max_iterations = 80;
  EngineResult r = run_replication_engine(h.nl, h.pl, h.dm, opt);
  EXPECT_GE(r.final_critical, r.lower_bound - 1e-6);
  if (r.reached_lower_bound)
    EXPECT_NEAR(r.final_critical, r.lower_bound, r.lower_bound * 0.01 + 1e-6);
}

TEST(Engine, ModestReplicationOverhead) {
  // Paper: replication introduces ~0.4-0.9% new blocks. At our small test
  // scale allow more, but the overhead must stay clearly bounded.
  EngineHarness h(11);
  EngineOptions opt;
  opt.max_iterations = 60;
  EngineResult r = run_replication_engine(h.nl, h.pl, h.dm, opt);
  EXPECT_LE(r.final_blocks, r.initial_blocks + r.initial_blocks / 5);
}

TEST(Engine, DeterministicForFixedInputs) {
  EngineHarness a(12);
  EngineHarness b(12);
  EngineOptions opt;
  opt.max_iterations = 20;
  EngineResult ra = run_replication_engine(a.nl, a.pl, a.dm, opt);
  EngineResult rb = run_replication_engine(b.nl, b.pl, b.dm, opt);
  EXPECT_DOUBLE_EQ(ra.final_critical, rb.final_critical);
  EXPECT_EQ(ra.total_replicated, rb.total_replicated);
  EXPECT_EQ(ra.history.size(), rb.history.size());
}

TEST(Engine, TinyCircuitNoCrash) {
  testing::TinyPlaced t;
  EngineOptions opt;
  opt.max_iterations = 10;
  Netlist golden = t.nl;
  EngineResult r = run_replication_engine(t.nl, *t.pl, t.dm, opt);
  EXPECT_LE(r.final_critical, r.initial_critical + 1e-9);
  EXPECT_TRUE(functionally_equivalent(golden, t.nl, 32, 5));
}

TEST(Engine, VariantNames) {
  EXPECT_STREQ(variant_name(EmbedVariant::kRtEmbedding), "RT-Embedding");
  EXPECT_STREQ(variant_name(EmbedVariant::kLex3), "Lex-3");
  EXPECT_STREQ(variant_name(EmbedVariant::kLexMc), "Lex-mc");
}

}  // namespace
}  // namespace repro
