#include <gtest/gtest.h>

#include "embed/embedder.h"
#include "netlist/sim.h"
#include "replicate/extraction.h"
#include "replicate/replication_tree.h"
#include "test_helpers.h"
#include "timing/spt.h"
#include "timing/timing_graph.h"

namespace repro {
namespace {

using testing::TinyPlaced;

/// Embeds the replication tree for po0's cone with the engine-style cost
/// function and applies the chosen solution.
struct ExtractionHarness {
  TinyPlaced t;
  Netlist golden;

  ExtractionHarness() : golden(t.nl) {}

  ExtractionStats run(double eps, bool pick_fastest_solution) {
    TimingGraph tg(t.nl, *t.pl, t.dm);
    Spt spt = extract_eps_spt(tg, tg.critical_sink(), eps);
    ReplicationTree rt = build_replication_tree(tg, spt);
    EmbeddingGraph graph =
        EmbeddingGraph::make_grid({1, 1, 4, 4}, 1.0, t.dm.wire_delay_per_unit);
    // Splice I/O terminals.
    for (TreeNodeId n : rt.tree.post_order()) {
      const FaninTreeNode& tn = rt.tree.node(n);
      if (!tn.is_leaf() && n != rt.tree.root()) continue;
      if (graph.vertex_at(tn.fixed_loc).valid()) continue;
      Point q{std::clamp(tn.fixed_loc.x, 1, 4), std::clamp(tn.fixed_loc.y, 1, 4)};
      EmbedVertexId pv = graph.add_vertex(tn.fixed_loc);
      const int d = manhattan(tn.fixed_loc, q);
      graph.add_bidi_edge(pv, graph.vertex_at(q), d, t.dm.wire_delay_per_unit * d);
    }
    auto pcost = [&](TreeNodeId i, EmbedVertexId j) {
      Point p = graph.point(j);
      if (i == rt.tree.root()) return p == t.pl->location(rt.root_info.cell) ? 0.0 : 1e9;
      if (!t.pl->grid().is_logic(p)) return 1e9;
      const FaninTreeNode& tn = rt.tree.node(i);
      for (CellId occ : t.pl->cells_at(p))
        if (t.nl.cell_alive(occ) && t.nl.equivalent(occ, tn.cell)) return 0.0;
      return 4.0 + 2.0 * t.pl->occupancy(p);
    };
    FaninTreeEmbedder e(rt.tree, graph, pcost, EmbedOptions{});
    EXPECT_TRUE(e.run());
    int pick = pick_fastest_solution ? e.pick_fastest() : 0;
    auto emb = e.extract(pick);
    return apply_embedding(t.nl, *t.pl, rt, emb, graph);
  }
};

TEST(Extraction, CheapestSolutionIsIdentityWhenPlacementIsGood) {
  // With the equivalence discount, the cheapest solution puts every copy on
  // top of its original: zero replication, nothing moves.
  ExtractionHarness h;
  ExtractionStats s = h.run(5.0, /*fastest=*/false);
  EXPECT_EQ(s.replicated, 0);
  EXPECT_EQ(s.relocated + s.reused, static_cast<int>(3u));
  EXPECT_TRUE(h.t.nl.validate().empty()) << h.t.nl.validate();
  EXPECT_TRUE(functionally_equivalent(h.golden, h.t.nl, 32, 4));
}

TEST(Extraction, PreservesFunctionForFastestSolution) {
  ExtractionHarness h;
  h.run(5.0, /*fastest=*/true);
  EXPECT_TRUE(h.t.nl.validate().empty()) << h.t.nl.validate();
  EXPECT_TRUE(functionally_equivalent(h.golden, h.t.nl, 64, 9));
}

TEST(Extraction, FastestSolutionImprovesOrMaintainsSinkArrival) {
  ExtractionHarness h;
  TimingGraph before(h.t.nl, *h.t.pl, h.t.dm);
  double arr_before = before.arrival(before.sink_node(h.t.po0));
  h.run(5.0, /*fastest=*/true);
  TimingGraph after(h.t.nl, *h.t.pl, h.t.dm);
  double arr_after = after.arrival(after.sink_node(h.t.po0));
  EXPECT_LE(arr_after, arr_before + 1e-9);
}

TEST(Extraction, RelocatesFanoutOneInsteadOfReplicating) {
  // g1 drives only g3 (fanout 1): any embedding that moves its copy must
  // relocate the original, never replicate it.
  ExtractionHarness h;
  ExtractionStats s = h.run(5.0, /*fastest=*/true);
  // g1 and g2 each have fanout 1, so replication can only have happened for
  // g3 (fanout 2: r and po0).
  EXPECT_LE(s.replicated, 1);
  EXPECT_TRUE(h.t.nl.num_live_cells() <= h.golden.num_live_cells() + 1);
}

TEST(Extraction, ReplicationSplitsFanout) {
  // Force replication: pull po0 and r far apart so the fast solution must
  // copy g3 toward po0.
  TinyPlaced t;
  Netlist golden = t.nl;
  t.pl->place(t.po0, {5, 1});
  t.pl->place(t.r, {1, 4});
  TimingGraph tg(t.nl, *t.pl, t.dm);
  Spt spt = extract_eps_spt(tg, tg.critical_sink(), 0.0);
  ReplicationTree rt = build_replication_tree(tg, spt);
  EmbeddingGraph graph =
      EmbeddingGraph::make_grid({1, 1, 4, 4}, 1.0, t.dm.wire_delay_per_unit);
  for (TreeNodeId n : rt.tree.post_order()) {
    const FaninTreeNode& tn = rt.tree.node(n);
    if ((!tn.is_leaf() && n != rt.tree.root()) ||
        graph.vertex_at(tn.fixed_loc).valid())
      continue;
    Point q{std::clamp(tn.fixed_loc.x, 1, 4), std::clamp(tn.fixed_loc.y, 1, 4)};
    EmbedVertexId pv = graph.add_vertex(tn.fixed_loc);
    const int d = manhattan(tn.fixed_loc, q);
    graph.add_bidi_edge(pv, graph.vertex_at(q), d, t.dm.wire_delay_per_unit * d);
  }
  auto pcost = [&](TreeNodeId i, EmbedVertexId j) {
    Point p = graph.point(j);
    if (i == rt.tree.root())
      return p == t.pl->location(rt.root_info.cell) ? 0.0 : 1e9;
    if (!t.pl->grid().is_logic(p)) return 1e9;
    const FaninTreeNode& tn = rt.tree.node(i);
    for (CellId occ : t.pl->cells_at(p))
      if (t.nl.cell_alive(occ) && t.nl.equivalent(occ, tn.cell)) return 0.0;
    return 1.0;
  };
  FaninTreeEmbedder e(rt.tree, graph, pcost, EmbedOptions{});
  ASSERT_TRUE(e.run());
  auto emb = e.extract(e.pick_fastest());
  ExtractionStats s = apply_embedding(t.nl, *t.pl, rt, emb, graph);

  // If a replica of g3 was created, the original must keep feeding r.
  if (s.replicated > 0) {
    NetId g3_out = t.nl.cell(t.g3).output;
    bool r_on_original = false;
    for (const Sink& sk : t.nl.net(g3_out).sinks)
      if (sk.cell == t.r) r_on_original = true;
    EXPECT_TRUE(r_on_original);
  }
  EXPECT_TRUE(t.nl.validate().empty()) << t.nl.validate();
  EXPECT_TRUE(functionally_equivalent(golden, t.nl, 64, 21));
}

// ---------------------------------------------------------------------------
// Postprocess unification (Section V-C).

TEST(Unification, DrainsRedundantReplica) {
  TinyPlaced t;
  Netlist golden = t.nl;
  // Replicate g3 next to the original and give it po0's fanout.
  CellId rep = t.nl.replicate_cell(t.g3);
  t.pl->place(rep, {2, 3});
  t.nl.reassign_input(t.po0, 0, t.nl.cell(rep).output);
  // Conservative unification: po0 is closer to the original g3 (2,2)?
  // po0 at (3,0): d(g3)=3, d(rep)=4 -> reassigning back to g3 improves.
  UnificationStats s = postprocess_unification(t.nl, *t.pl, t.dm, false);
  EXPECT_GE(s.fanouts_moved, 1);
  EXPECT_GE(s.cells_deleted, 1);
  EXPECT_FALSE(t.nl.cell_alive(rep));
  EXPECT_TRUE(t.nl.validate().empty()) << t.nl.validate();
  EXPECT_TRUE(functionally_equivalent(golden, t.nl, 32, 3));
}

TEST(Unification, ConservativeModeKeepsBetterReplica) {
  TinyPlaced t;
  // Replica placed right next to po0: strictly better for po0; conservative
  // unification must NOT move po0 back to the slower original.
  CellId rep = t.nl.replicate_cell(t.g3);
  t.pl->place(rep, {3, 1});
  t.nl.reassign_input(t.po0, 0, t.nl.cell(rep).output);
  postprocess_unification(t.nl, *t.pl, t.dm, false);
  EXPECT_TRUE(t.nl.cell_alive(rep));
  EXPECT_EQ(t.nl.net(t.nl.cell(rep).output).sinks.size(), 1u);
}

TEST(Unification, AggressiveModeUnifiesWithinSlack) {
  TinyPlaced t;
  Netlist golden = t.nl;
  // Same setup, but aggressive mode may drain the replica as long as the
  // critical delay is not violated. po0 via the original g3 has path
  // 2.5+2+1+3+0.5 = 9 = current critical, so the move is allowed.
  CellId rep = t.nl.replicate_cell(t.g3);
  t.pl->place(rep, {3, 1});
  t.nl.reassign_input(t.po0, 0, t.nl.cell(rep).output);
  UnificationStats s = postprocess_unification(t.nl, *t.pl, t.dm, true);
  EXPECT_GE(s.cells_deleted, 1);
  EXPECT_FALSE(t.nl.cell_alive(rep));
  EXPECT_TRUE(functionally_equivalent(golden, t.nl, 32, 8));
}

TEST(Unification, NoopWithoutReplicas) {
  TinyPlaced t;
  UnificationStats s = postprocess_unification(t.nl, *t.pl, t.dm, true);
  EXPECT_EQ(s.fanouts_moved, 0);
  EXPECT_EQ(s.cells_deleted, 0);
}

}  // namespace
}  // namespace repro
