#include <gtest/gtest.h>

#include "embed/embedding_graph.h"
#include "embed/fanin_tree.h"

namespace repro {
namespace {

TEST(FaninTree, PostOrderChildrenBeforeParents) {
  FaninTree t;
  TreeNodeId l1 = t.add_leaf("l1", {0, 0}, 0, true);
  TreeNodeId l2 = t.add_leaf("l2", {1, 0}, 0, true);
  TreeNodeId g1 = t.add_gate("g1", {l1, l2}, 1.0);
  TreeNodeId l3 = t.add_leaf("l3", {2, 0}, 0, true);
  TreeNodeId root = t.add_gate("root", {g1, l3}, 1.0);
  t.set_root(root, {3, 0});

  auto order = t.post_order();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order.back(), root);
  auto pos = [&](TreeNodeId n) {
    return std::find(order.begin(), order.end(), n) - order.begin();
  };
  EXPECT_LT(pos(l1), pos(g1));
  EXPECT_LT(pos(l2), pos(g1));
  EXPECT_LT(pos(g1), pos(root));
  EXPECT_LT(pos(l3), pos(root));
}

TEST(FaninTree, LeavesEnumeration) {
  FaninTree t;
  TreeNodeId l1 = t.add_leaf("l1", {0, 0}, 0, true);
  TreeNodeId l2 = t.add_leaf("l2", {1, 0}, 2.5, false);
  TreeNodeId g = t.add_gate("g", {l1, l2}, 1.0);
  t.set_root(t.add_gate("root", {g}, 1.0), {2, 2});
  auto leaves = t.leaves();
  ASSERT_EQ(leaves.size(), 2u);
  EXPECT_TRUE(t.node(leaves[0]).is_leaf());
  EXPECT_TRUE(t.node(leaves[1]).is_leaf());
}

TEST(FaninTree, SetRootFixesLocation) {
  FaninTree t;
  TreeNodeId l = t.add_leaf("l", {0, 0}, 0, true);
  TreeNodeId root = t.add_gate("root", {l}, 1.0);
  t.set_root(root, {5, 7});
  EXPECT_EQ(t.node(t.root()).fixed_loc, (Point{5, 7}));
}

TEST(FaninTree, CriticalInputIgnoresTerminators) {
  FaninTree t;
  TreeNodeId near_in = t.add_leaf("near", {1, 1}, 0, true);
  TreeNodeId term = t.add_leaf("term", {20, 20}, 99.0, false);
  TreeNodeId g = t.add_gate("g", {near_in, term}, 1.0);
  t.set_root(t.add_gate("root", {g}, 1.0), {0, 0});
  EXPECT_EQ(t.critical_input(), near_in);
}

TEST(FaninTree, CriticalInputNoneWithoutRealInputs) {
  FaninTree t;
  TreeNodeId term = t.add_leaf("term", {3, 3}, 5.0, false);
  t.set_root(t.add_gate("root", {term}, 1.0), {0, 0});
  EXPECT_FALSE(t.critical_input().valid());
}

TEST(EmbeddingGraph, GridConstruction) {
  EmbeddingGraph g = EmbeddingGraph::make_grid({0, 0, 2, 1}, 1.5, 0.5);
  EXPECT_EQ(g.num_vertices(), 6u);
  EmbedVertexId v = g.vertex_at({1, 0});
  ASSERT_TRUE(v.valid());
  // Interior-row vertex has 3 neighbors (left, right, up).
  EXPECT_EQ(g.edges_from(v).size(), 3u);
  for (const auto& e : g.edges_from(v)) {
    EXPECT_DOUBLE_EQ(e.cost, 1.5);
    EXPECT_DOUBLE_EQ(e.delay, 0.5);
  }
}

TEST(EmbeddingGraph, BlockedVerticesAbsent) {
  EmbeddingGraph g = EmbeddingGraph::make_grid(
      {0, 0, 3, 3}, 1.0, 1.0, [](Point p) { return p.x == 1 && p.y == 1; });
  EXPECT_FALSE(g.vertex_at({1, 1}).valid());
  EXPECT_EQ(g.num_vertices(), 15u);
  // Neighbors of the hole have one fewer edge.
  EXPECT_EQ(g.edges_from(g.vertex_at({1, 0})).size(), 2u);
}

TEST(EmbeddingGraph, LineConstruction) {
  EmbeddingGraph g = EmbeddingGraph::make_line(4, 2.0, 3.0);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.edges_from(g.vertex_at({0, 0})).size(), 1u);
  EXPECT_EQ(g.edges_from(g.vertex_at({1, 0})).size(), 2u);
}

TEST(EmbeddingGraph, VertexAtMissReturnsInvalid) {
  EmbeddingGraph g = EmbeddingGraph::make_line(3, 1, 1);
  EXPECT_FALSE(g.vertex_at({7, 7}).valid());
  EXPECT_FALSE(g.vertex_at({-1, 0}).valid());
}

TEST(EmbeddingGraph, ManualGraphWithAsymmetricEdges) {
  // The embedder supports arbitrary directed graphs; verify the builder
  // primitives behave.
  EmbeddingGraph g;
  EmbedVertexId a = g.add_vertex({0, 0});
  EmbedVertexId b = g.add_vertex({4, 0});
  g.add_edge(a, b, 1.0, 2.0);       // one-way
  EXPECT_EQ(g.edges_from(a).size(), 1u);
  EXPECT_EQ(g.edges_from(b).size(), 0u);
  g.add_bidi_edge(a, b, 3.0, 4.0);  // now both ways
  EXPECT_EQ(g.edges_from(b).size(), 1u);
}

}  // namespace
}  // namespace repro
