// Directed test of Section V-D: when the critical sink is a flip-flop whose
// own location is the limiting factor, repeated non-improvement must trigger
// simultaneous sink placement (relocatable root) and move the register,
// balancing the D-side gain against the Q-side fanout penalty.

#include <gtest/gtest.h>

#include "netlist/sim.h"
#include "place/placement.h"
#include "replicate/engine.h"
#include "timing/timing_graph.h"

namespace repro {
namespace {

struct FfRig {
  Netlist nl;
  FpgaGrid grid{10, 2};
  LinearDelayModel dm;
  std::unique_ptr<Placement> pl;
  CellId pi, g1, g2, r, gq, po;

  FfRig() {
    pi = nl.add_input_pad("pi");
    g1 = nl.add_logic("g1", {nl.cell(pi).output}, 0b10, false);
    g2 = nl.add_logic("g2", {nl.cell(g1).output}, 0b10, false);
    r = nl.add_logic("r", {nl.cell(g2).output}, 0b10, true);
    gq = nl.add_logic("gq", {nl.cell(r).output}, 0b10, false);
    po = nl.add_output_pad("po");
    nl.connect(nl.cell(gq).output, po, 0);

    pl = std::make_unique<Placement>(nl, grid);
    // The D cone lives on the left; the register is stranded on the far
    // right next to its (short) Q-side consumer. The D path into r is long
    // but perfectly monotone, so no internal relocation can improve it: the
    // critical sink is r's own D pin and only moving r helps — the exact
    // Section V-D situation.
    pl->place(pi, {0, 5});
    pl->place(g1, {1, 5});
    pl->place(g2, {2, 5});
    pl->place(r, {10, 5});
    pl->place(gq, {9, 5});
    pl->place(po, {11, 5});
  }
};

TEST(FfRelocation, EngineMovesTheStrandedRegister) {
  FfRig rig;
  Netlist golden = rig.nl;
  Point r_before = rig.pl->location(rig.r);

  EngineOptions opt;
  opt.enable_ff_relocation = true;
  opt.max_iterations = 40;
  EngineResult res = run_replication_engine(rig.nl, *rig.pl, rig.dm, opt);

  EXPECT_LT(res.final_critical, res.initial_critical - 1e-9);
  // The register must actually have moved left off its stranded column,
  // toward the balance point between its D cone and its Q consumer.
  Point r_after = rig.pl->location(rig.r);
  EXPECT_LT(r_after.x, r_before.x);
  bool used_ffr = false;
  for (const IterationStats& it : res.history) used_ffr |= it.ff_relocation;
  EXPECT_TRUE(used_ffr);
  EXPECT_TRUE(functionally_equivalent(golden, rig.nl, 48, 5));
  EXPECT_TRUE(rig.pl->legal()) << rig.pl->check_legal();
}

TEST(FfRelocation, DisabledKeepsTheRegisterPinned) {
  FfRig rig;
  EngineOptions opt;
  opt.enable_ff_relocation = false;
  opt.max_iterations = 40;
  run_replication_engine(rig.nl, *rig.pl, rig.dm, opt);
  EXPECT_EQ(rig.pl->location(rig.r), (Point{10, 5}));
}

TEST(FfRelocation, EnabledBeatsDisabled) {
  FfRig with;
  EngineOptions on;
  on.enable_ff_relocation = true;
  on.max_iterations = 40;
  EngineResult r_on = run_replication_engine(with.nl, *with.pl, with.dm, on);

  FfRig without;
  EngineOptions off;
  off.enable_ff_relocation = false;
  off.max_iterations = 40;
  EngineResult r_off = run_replication_engine(without.nl, *without.pl, without.dm, off);

  EXPECT_LT(r_on.final_critical, r_off.final_critical - 1e-9);
}

TEST(FfRelocation, QSidePenaltyRespected) {
  // Section V-D balances the D-side gain against the Q-side fanout penalty:
  // r must not be dragged all the way to its D cone (which would make the
  // Q path to gq at x=9 the new critical path).
  FfRig rig;
  EngineOptions opt;
  opt.enable_ff_relocation = true;
  opt.max_iterations = 40;
  EngineResult res = run_replication_engine(rig.nl, *rig.pl, rig.dm, opt);
  Point r_after = rig.pl->location(rig.r);
  TimingGraph tg(rig.nl, *rig.pl, rig.dm);
  EXPECT_LE(tg.critical_delay(), res.initial_critical + 1e-9);
  EXPECT_GE(r_after.x, 3);
}

}  // namespace
}  // namespace repro
