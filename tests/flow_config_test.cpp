#include <gtest/gtest.h>

#include <cstdlib>

#include "flow/experiment.h"
#include "serve/service.h"

namespace repro {
namespace {

struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old) saved_ = old;
    had_ = old != nullptr;
  }
  ~EnvGuard() {
    if (had_)
      setenv(name_, saved_.c_str(), 1);
    else
      unsetenv(name_);
  }
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(FlowConfig, DefaultsWithoutEnv) {
  EnvGuard g1("REPRO_SCALE");
  EnvGuard g2("REPRO_QUICK");
  unsetenv("REPRO_SCALE");
  unsetenv("REPRO_QUICK");
  FlowConfig cfg = config_from_env();
  EXPECT_DOUBLE_EQ(cfg.scale, 0.15);
  EXPECT_TRUE(cfg.route_lowstress);
}

TEST(FlowConfig, ScaleOverride) {
  EnvGuard g1("REPRO_SCALE");
  setenv("REPRO_SCALE", "0.5", 1);
  FlowConfig cfg = config_from_env();
  EXPECT_DOUBLE_EQ(cfg.scale, 0.5);
}

TEST(FlowConfig, QuickModeShrinksWork) {
  EnvGuard g1("REPRO_SCALE");
  EnvGuard g2("REPRO_QUICK");
  unsetenv("REPRO_SCALE");
  setenv("REPRO_QUICK", "1", 1);
  FlowConfig cfg = config_from_env();
  EXPECT_LE(cfg.scale, 0.1);
  EXPECT_LT(cfg.annealer.inner_num, 1.0);
}

TEST(FlowConfig, QuickModeRespectsSmallerExplicitScale) {
  EnvGuard g1("REPRO_SCALE");
  EnvGuard g2("REPRO_QUICK");
  setenv("REPRO_SCALE", "0.05", 1);
  setenv("REPRO_QUICK", "1", 1);
  FlowConfig cfg = config_from_env();
  EXPECT_DOUBLE_EQ(cfg.scale, 0.05);
}

// A typo'd knob must degrade to the default, never abort or zero a batch
// (std::atof would have turned "abc" into scale 0.0).
TEST(FlowConfig, InvalidScaleFallsBackToDefault) {
  EnvGuard g1("REPRO_SCALE");
  EnvGuard g2("REPRO_QUICK");
  unsetenv("REPRO_QUICK");
  for (const char* bad : {"abc", "0.5xyz", "-1", "0", "nan", "inf", ""}) {
    setenv("REPRO_SCALE", bad, 1);
    EXPECT_DOUBLE_EQ(config_from_env().scale, 0.15) << "REPRO_SCALE=" << bad;
  }
}

TEST(FlowConfig, ThreadsOverrideAndInvalidFallback) {
  EnvGuard g1("REPRO_THREADS");
  setenv("REPRO_THREADS", "3", 1);
  EXPECT_EQ(config_from_env().num_threads, 3);
  for (const char* bad : {"-2", "2x", "lots", ""}) {
    setenv("REPRO_THREADS", bad, 1);
    EXPECT_EQ(config_from_env().num_threads, 0) << "REPRO_THREADS=" << bad;
  }
}

TEST(FlowConfig, RouterFastPathKnobs) {
  EnvGuard g1("REPRO_ROUTE_ASTAR");
  EnvGuard g2("REPRO_ROUTE_INCREMENTAL");
  EnvGuard g3("REPRO_ROUTE_WARM");
  unsetenv("REPRO_ROUTE_ASTAR");
  unsetenv("REPRO_ROUTE_INCREMENTAL");
  unsetenv("REPRO_ROUTE_WARM");

  setenv("REPRO_ROUTE_ASTAR", "0", 1);
  setenv("REPRO_ROUTE_INCREMENTAL", "0", 1);
  setenv("REPRO_ROUTE_WARM", "0", 1);
  FlowConfig off = config_from_env();
  EXPECT_FALSE(off.router.use_astar);
  EXPECT_FALSE(off.router.incremental_reroute);
  EXPECT_FALSE(off.router.warm_start_wmin);

  setenv("REPRO_ROUTE_ASTAR", "1", 1);
  setenv("REPRO_ROUTE_INCREMENTAL", "1", 1);
  setenv("REPRO_ROUTE_WARM", "1", 1);
  FlowConfig on = config_from_env();
  EXPECT_TRUE(on.router.use_astar);
  EXPECT_TRUE(on.router.incremental_reroute);
  EXPECT_TRUE(on.router.warm_start_wmin);
}

TEST(FlowConfig, PlacerBackendOverride) {
  EnvGuard g1("REPRO_PLACER");
  setenv("REPRO_PLACER", "analytic", 1);
  EXPECT_EQ(config_from_env().placer, PlacerBackend::kAnalytic);
  setenv("REPRO_PLACER", "hybrid", 1);
  EXPECT_EQ(config_from_env().placer, PlacerBackend::kHybrid);
  setenv("REPRO_PLACER", "annealer", 1);
  EXPECT_EQ(config_from_env().placer, PlacerBackend::kAnnealer);
}

// Same degradation contract as the other env knobs: a typo selects the
// default backend with a warning, it never aborts a batch.
TEST(FlowConfig, InvalidPlacerFallsBackToAnnealer) {
  EnvGuard g1("REPRO_PLACER");
  for (const char* bad : {"Analytic", "gradient", "2", ""}) {
    setenv("REPRO_PLACER", bad, 1);
    EXPECT_EQ(config_from_env().placer, PlacerBackend::kAnnealer)
        << "REPRO_PLACER=" << bad;
  }
}

TEST(ServiceConfig, EnvKnobsOverrideBase) {
  EnvGuard g1("REPRO_SERVE_THREADS");
  EnvGuard g2("REPRO_SERVE_JOB_TIMEOUT");
  EnvGuard g3("REPRO_SERVE_MAX_RETRIES");
  setenv("REPRO_SERVE_THREADS", "4", 1);
  setenv("REPRO_SERVE_JOB_TIMEOUT", "2.5", 1);
  setenv("REPRO_SERVE_MAX_RETRIES", "3", 1);
  const ServiceOptions opt = service_options_from_env();
  EXPECT_EQ(opt.threads, 4);
  EXPECT_DOUBLE_EQ(opt.job_timeout_seconds, 2.5);
  EXPECT_EQ(opt.max_retries, 3);
}

TEST(ServiceConfig, InvalidEnvKnobsFallBackToBase) {
  EnvGuard g1("REPRO_SERVE_THREADS");
  EnvGuard g2("REPRO_SERVE_JOB_TIMEOUT");
  EnvGuard g3("REPRO_SERVE_MAX_RETRIES");
  setenv("REPRO_SERVE_THREADS", "many", 1);
  setenv("REPRO_SERVE_JOB_TIMEOUT", "-5", 1);
  setenv("REPRO_SERVE_MAX_RETRIES", "3.5", 1);
  ServiceOptions base;
  base.threads = 2;
  base.job_timeout_seconds = 60;
  base.max_retries = 1;
  const ServiceOptions opt = service_options_from_env(base);
  EXPECT_EQ(opt.threads, 2);
  EXPECT_DOUBLE_EQ(opt.job_timeout_seconds, 60);
  EXPECT_EQ(opt.max_retries, 1);
}

}  // namespace
}  // namespace repro
