#include <gtest/gtest.h>

#include <cstdlib>

#include "flow/experiment.h"

namespace repro {
namespace {

struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old) saved_ = old;
    had_ = old != nullptr;
  }
  ~EnvGuard() {
    if (had_)
      setenv(name_, saved_.c_str(), 1);
    else
      unsetenv(name_);
  }
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(FlowConfig, DefaultsWithoutEnv) {
  EnvGuard g1("REPRO_SCALE");
  EnvGuard g2("REPRO_QUICK");
  unsetenv("REPRO_SCALE");
  unsetenv("REPRO_QUICK");
  FlowConfig cfg = config_from_env();
  EXPECT_DOUBLE_EQ(cfg.scale, 0.15);
  EXPECT_TRUE(cfg.route_lowstress);
}

TEST(FlowConfig, ScaleOverride) {
  EnvGuard g1("REPRO_SCALE");
  setenv("REPRO_SCALE", "0.5", 1);
  FlowConfig cfg = config_from_env();
  EXPECT_DOUBLE_EQ(cfg.scale, 0.5);
}

TEST(FlowConfig, QuickModeShrinksWork) {
  EnvGuard g1("REPRO_SCALE");
  EnvGuard g2("REPRO_QUICK");
  unsetenv("REPRO_SCALE");
  setenv("REPRO_QUICK", "1", 1);
  FlowConfig cfg = config_from_env();
  EXPECT_LE(cfg.scale, 0.1);
  EXPECT_LT(cfg.annealer.inner_num, 1.0);
}

TEST(FlowConfig, QuickModeRespectsSmallerExplicitScale) {
  EnvGuard g1("REPRO_SCALE");
  EnvGuard g2("REPRO_QUICK");
  setenv("REPRO_SCALE", "0.05", 1);
  setenv("REPRO_QUICK", "1", 1);
  FlowConfig cfg = config_from_env();
  EXPECT_DOUBLE_EQ(cfg.scale, 0.05);
}

}  // namespace
}  // namespace repro
