#include <gtest/gtest.h>

#include <sstream>

#include "flow/experiment.h"
#include "flow/table.h"

namespace repro {
namespace {

TEST(Flow, PrepareCircuitProducesLegalPlacement) {
  FlowConfig cfg;
  cfg.scale = 0.04;
  cfg.annealer.inner_num = 0.3;
  PlacedCircuit pc = prepare_circuit(mcnc_suite()[0], cfg);
  EXPECT_EQ(pc.name, "ex5p");
  EXPECT_TRUE(pc.pl->legal()) << pc.pl->check_legal();
  EXPECT_TRUE(pc.nl->validate().empty());
  EXPECT_GT(pc.anneal_seconds, 0.0);
}

TEST(Flow, GridIsMinimumSquare) {
  FlowConfig cfg;
  cfg.scale = 0.04;
  cfg.annealer.inner_num = 0.3;
  PlacedCircuit pc = prepare_circuit(mcnc_suite()[0], cfg);
  const int n = pc.grid->n();
  EXPECT_GE(static_cast<std::size_t>(n) * n, pc.nl->num_logic());
  if (n > 1)
    EXPECT_LT(static_cast<std::size_t>(n - 1) * (n - 1), pc.nl->num_logic());
}

TEST(Flow, EvaluateRoutedProducesTableIColumns) {
  FlowConfig cfg;
  cfg.scale = 0.04;
  cfg.annealer.inner_num = 0.3;
  PlacedCircuit pc = prepare_circuit(mcnc_suite()[1], cfg);  // tseng
  CircuitMetrics m = evaluate_routed(pc.name, *pc.nl, *pc.pl, cfg);
  EXPECT_EQ(m.circuit, "tseng");
  EXPECT_GT(m.crit_winf, 0.0);
  EXPECT_GE(m.crit_wls, m.crit_winf - 1e-9);  // low stress never faster
  EXPECT_GT(m.wirelength, 0);
  EXPECT_GE(m.wmin, 1);
  EXPECT_GT(m.density, 0.0);
  EXPECT_LE(m.density, 1.0);
  EXPECT_EQ(m.blocks, m.luts + m.ios);
}

TEST(Flow, LowStressSkippable) {
  FlowConfig cfg;
  cfg.scale = 0.04;
  cfg.annealer.inner_num = 0.3;
  cfg.route_lowstress = false;
  PlacedCircuit pc = prepare_circuit(mcnc_suite()[0], cfg);
  CircuitMetrics m = evaluate_routed(pc.name, *pc.nl, *pc.pl, cfg);
  EXPECT_DOUBLE_EQ(m.crit_wls, m.crit_winf);
  EXPECT_EQ(m.wmin, 0);
}

TEST(ConsoleTable, AlignsColumns) {
  ConsoleTable t({"circuit", "value"});
  t.add_row({"ex5p", "1.00"});
  t.add_separator();
  t.add_row({"longer-name", "0.5"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("circuit"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(ConsoleTable, HandlesShortRows) {
  ConsoleTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace repro
