#include <gtest/gtest.h>

#include <set>

#include "arch/fpga_grid.h"
#include "gen/circuit_gen.h"
#include "netlist/sim.h"

namespace repro {
namespace {

CircuitSpec base_spec() {
  CircuitSpec spec;
  spec.num_logic = 150;
  spec.num_inputs = 12;
  spec.num_outputs = 10;
  spec.registered_fraction = 0.3;
  spec.depth = 8;
  spec.seed = 17;
  return spec;
}

TEST(Generator, ProducesRequestedCounts) {
  CircuitSpec spec = base_spec();
  Netlist nl = generate_circuit(spec);
  EXPECT_EQ(nl.num_logic(), static_cast<std::size_t>(spec.num_logic));
  EXPECT_EQ(nl.num_input_pads(), static_cast<std::size_t>(spec.num_inputs));
  EXPECT_EQ(nl.num_output_pads(), static_cast<std::size_t>(spec.num_outputs));
}

TEST(Generator, ValidNetlist) {
  Netlist nl = generate_circuit(base_spec());
  EXPECT_TRUE(nl.validate().empty()) << nl.validate();
}

TEST(Generator, Deterministic) {
  Netlist a = generate_circuit(base_spec());
  Netlist b = generate_circuit(base_spec());
  ASSERT_EQ(a.cell_capacity(), b.cell_capacity());
  for (std::size_t i = 0; i < a.cell_capacity(); ++i) {
    CellId id(static_cast<CellId::value_type>(i));
    EXPECT_EQ(a.cell(id).function, b.cell(id).function);
    EXPECT_EQ(a.cell(id).inputs, b.cell(id).inputs);
  }
  EXPECT_TRUE(functionally_equivalent(a, b, 8, 1));
}

TEST(Generator, DifferentSeedsDiffer) {
  CircuitSpec s1 = base_spec();
  CircuitSpec s2 = base_spec();
  s2.seed = 18;
  Netlist a = generate_circuit(s1);
  Netlist b = generate_circuit(s2);
  EXPECT_FALSE(functionally_equivalent(a, b, 8, 1));
}

TEST(Generator, RegisteredFractionApproximate) {
  Netlist nl = generate_circuit(base_spec());
  double frac = static_cast<double>(nl.num_registered()) /
                static_cast<double>(nl.num_logic());
  EXPECT_GT(frac, 0.15);
  EXPECT_LT(frac, 0.45);
}

TEST(Generator, CombinationalWhenFractionZero) {
  CircuitSpec spec = base_spec();
  spec.registered_fraction = 0.0;
  Netlist nl = generate_circuit(spec);
  EXPECT_EQ(nl.num_registered(), 0u);
}

TEST(Generator, MostOutputsAreUsed) {
  Netlist nl = generate_circuit(base_spec());
  int dangling = 0;
  for (CellId c : nl.live_cells()) {
    const Cell& cell = nl.cell(c);
    if (cell.kind == CellKind::kLogic && nl.net(cell.output).sinks.empty())
      ++dangling;
  }
  // The generator attaches dangling outputs; a tiny residue is allowed.
  EXPECT_LE(dangling, base_spec().num_logic / 20);
}

TEST(Generator, HasReconvergence) {
  // Reconvergence = some net with fanout >= 2 (paths that split and rejoin
  // later are guaranteed in a random DAG with fanout reuse).
  Netlist nl = generate_circuit(base_spec());
  int multi_fanout = 0;
  for (NetId n : nl.live_nets())
    if (nl.net(n).sinks.size() >= 2) ++multi_fanout;
  EXPECT_GT(multi_fanout, 10);
}

TEST(Generator, SimulatesWithoutCombinationalLoops) {
  Netlist nl = generate_circuit(base_spec());
  Simulator sim(nl);
  std::unordered_map<std::string, std::uint64_t> stim;
  for (CellId c : nl.live_cells())
    if (nl.cell(c).kind == CellKind::kInputPad) stim[nl.cell(c).name] = 0x5a5a;
  EXPECT_NO_THROW({
    for (int cyc = 0; cyc < 4; ++cyc) sim.step(stim);
  });
}

TEST(McncSuite, TwentyCircuitsInPaperOrder) {
  const auto& suite = mcnc_suite();
  ASSERT_EQ(suite.size(), 20u);
  EXPECT_STREQ(suite.front().name, "ex5p");
  EXPECT_STREQ(suite.back().name, "clma");
  EXPECT_EQ(suite.back().luts, 8383);
}

TEST(McncSuite, TableISizesRecovered) {
  // min_grid_for must reproduce every published FPGA size at io_rat 2.
  for (const McncCircuit& c : mcnc_suite()) {
    EXPECT_EQ(FpgaGrid::min_grid_for(c.luts, c.ios, 2), c.fpga_size) << c.name;
  }
}

TEST(McncSuite, SpecScalesBlocks) {
  const McncCircuit& clma = mcnc_suite().back();
  CircuitSpec full = spec_for(clma, 1.0, 1);
  CircuitSpec quarter = spec_for(clma, 0.25, 1);
  EXPECT_EQ(full.num_logic, 8383);
  EXPECT_NEAR(quarter.num_logic, 8383 / 4, 2);
  EXPECT_GT(full.depth, quarter.depth - 3);  // depth shrinks only mildly
}

TEST(McncSuite, SequentialFlagsProduceRegisters) {
  const auto& suite = mcnc_suite();
  // tseng is sequential, ex5p is not.
  Netlist seq = generate_circuit(spec_for(suite[1], 0.05, 3));
  Netlist comb = generate_circuit(spec_for(suite[0], 0.05, 3));
  EXPECT_GT(seq.num_registered(), 0u);
  EXPECT_EQ(comb.num_registered(), 0u);
}

}  // namespace
}  // namespace repro
