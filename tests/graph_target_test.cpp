// The paper stresses that the embedder works on ANY graph-based target
// ("the placement target is not the line, but is an embedding graph"),
// which is what makes nonuniform routing architectures and blockages free
// (Section II-A). These tests embed on non-grid targets: rings, asymmetric
// directed graphs and disconnected regions.

#include <gtest/gtest.h>

#include "embed/embedder.h"
#include "embed/embedding_graph.h"
#include "embed/fanin_tree.h"

namespace repro {
namespace {

/// Ring of n vertices at synthetic coordinates; unit cost/delay per hop.
EmbeddingGraph make_ring(int n) {
  EmbeddingGraph g;
  for (int i = 0; i < n; ++i) g.add_vertex(Point{i, 0});
  for (int i = 0; i < n; ++i)
    g.add_bidi_edge(g.vertex_at({i, 0}), g.vertex_at({(i + 1) % n, 0}), 1.0, 1.0);
  return g;
}

TEST(GraphTarget, RingUsesTheShortWayAround) {
  // On a ring of 8, the distance from 0 to 6 is 2 the short way. The
  // point coordinates LIE (Manhattan says 6); only graph search gives 2 —
  // embedding must use graph distances, not geometry.
  EmbeddingGraph g = make_ring(8);
  FaninTree tree;
  TreeNodeId leaf = tree.add_leaf("s", {0, 0}, 0.0, true);
  TreeNodeId gate = tree.add_gate("g", {leaf}, 0.0);
  TreeNodeId root = tree.add_gate("root", {gate}, 0.0);
  tree.set_root(root, {6, 0});

  FaninTreeEmbedder e(tree, g, nullptr, EmbedOptions{});
  ASSERT_TRUE(e.run());
  EXPECT_DOUBLE_EQ(e.tradeoff()[e.pick_fastest()].delay.primary(), 2.0);
}

TEST(GraphTarget, AsymmetricDirectedCosts) {
  // One-way fast lane: a -> b cheap, b -> a expensive. The embedder must
  // respect directionality (signal flows leaf -> root).
  EmbeddingGraph g;
  EmbedVertexId a = g.add_vertex({0, 0});
  EmbedVertexId b = g.add_vertex({1, 0});
  g.add_edge(a, b, 1.0, 1.0);
  g.add_edge(b, a, 10.0, 10.0);

  FaninTree fwd;
  TreeNodeId l1 = fwd.add_leaf("s", {0, 0}, 0.0, true);
  fwd.set_root(fwd.add_gate("root", {l1}, 0.0), {1, 0});
  FaninTreeEmbedder ef(fwd, g, nullptr, EmbedOptions{});
  ASSERT_TRUE(ef.run());
  EXPECT_DOUBLE_EQ(ef.tradeoff()[ef.pick_fastest()].delay.primary(), 1.0);

  FaninTree bwd;
  TreeNodeId l2 = bwd.add_leaf("s", {1, 0}, 0.0, true);
  bwd.set_root(bwd.add_gate("root", {l2}, 0.0), {0, 0});
  FaninTreeEmbedder eb(bwd, g, nullptr, EmbedOptions{});
  ASSERT_TRUE(eb.run());
  EXPECT_DOUBLE_EQ(eb.tradeoff()[eb.pick_fastest()].delay.primary(), 10.0);
}

TEST(GraphTarget, UnreachableRootFails) {
  // Two disconnected islands: no embedding exists.
  EmbeddingGraph g;
  g.add_vertex({0, 0});
  g.add_vertex({5, 0});  // no edges between them
  FaninTree tree;
  TreeNodeId leaf = tree.add_leaf("s", {0, 0}, 0.0, true);
  tree.set_root(tree.add_gate("root", {leaf}, 0.0), {5, 0});
  FaninTreeEmbedder e(tree, g, nullptr, EmbedOptions{});
  EXPECT_FALSE(e.run());
}

TEST(GraphTarget, NonuniformEdgeDelays) {
  // An "express channel" along the top row (half delay) vs local routing:
  // the fastest solution detours through the express row even though it is
  // geometrically longer.
  EmbeddingGraph g;
  for (int x = 0; x <= 6; ++x)
    for (int y = 0; y <= 1; ++y) g.add_vertex(Point{x, y});
  for (int x = 0; x <= 6; ++x)
    g.add_bidi_edge(g.vertex_at({x, 0}), g.vertex_at({x, 1}), 1.0, 1.0);
  for (int x = 0; x < 6; ++x) {
    g.add_bidi_edge(g.vertex_at({x, 0}), g.vertex_at({x + 1, 0}), 1.0, 2.0);
    g.add_bidi_edge(g.vertex_at({x, 1}), g.vertex_at({x + 1, 1}), 1.0, 0.5);
  }
  FaninTree tree;
  TreeNodeId leaf = tree.add_leaf("s", {0, 0}, 0.0, true);
  tree.set_root(tree.add_gate("root", {leaf}, 0.0), {6, 0});
  FaninTreeEmbedder e(tree, g, nullptr, EmbedOptions{});
  ASSERT_TRUE(e.run());
  // Express: up (1) + 6 * 0.5 + down (1) = 5 vs local 12.
  EXPECT_DOUBLE_EQ(e.tradeoff()[e.pick_fastest()].delay.primary(), 5.0);
}

TEST(GraphTarget, JoinOnRingWithTwoLeaves) {
  EmbeddingGraph g = make_ring(10);
  FaninTree tree;
  TreeNodeId a = tree.add_leaf("a", {0, 0}, 0.0, true);
  TreeNodeId b = tree.add_leaf("b", {4, 0}, 0.0, true);
  TreeNodeId gate = tree.add_gate("g", {a, b}, 0.0);
  tree.set_root(tree.add_gate("root", {gate}, 0.0), {2, 0});
  FaninTreeEmbedder e(tree, g, nullptr, EmbedOptions{});
  ASSERT_TRUE(e.run());
  // Gate at vertex 2: both leaves 2 hops away, root 0 -> delay 2.
  EXPECT_DOUBLE_EQ(e.tradeoff()[e.pick_fastest()].delay.primary(), 2.0);
}

}  // namespace
}  // namespace repro
