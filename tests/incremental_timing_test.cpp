// Randomized equivalence tests for the incremental TimingEngine: interleaved
// placement moves, replications (netlist splices), unifications, deletions,
// and commit/rollback must keep the engine's arrival/required/slack and
// critical delay bit-equal (1e-12) to a from-scratch TimingGraph oracle at
// every step. Also pins down the zero-rebuild property: after initialization
// the annealer and the replication engine perform no from-scratch TimingGraph
// constructions (observed via timing_counters(), not asserted by reading the
// code).

#include <gtest/gtest.h>

#include <vector>

#include "gen/circuit_gen.h"
#include "place/annealer.h"
#include "replicate/engine.h"
#include "timing/timing_engine.h"
#include "timing/timing_graph.h"
#include "util/rng.h"
#include "util/stats.h"

namespace repro {
namespace {

Netlist make_circuit(std::uint64_t seed, int num_logic = 120) {
  CircuitSpec spec;
  spec.num_logic = num_logic;
  spec.num_inputs = 10;
  spec.num_outputs = 10;
  spec.registered_fraction = 0.25;
  spec.depth = 7;
  spec.seed = seed;
  return generate_circuit(spec);
}

/// The engine's values must match a freshly built TimingGraph on every live
/// cell's nodes (arrival, required, slack) and on the critical delay.
void expect_matches_oracle(const TimingEngine& eng, const Netlist& nl,
                           const Placement& pl, const LinearDelayModel& dm,
                           const char* ctx) {
  TimingCounterSuppressor suppress;  // oracle builds are test scaffolding
  TimingGraph oracle(nl, pl, dm);
  const TimingGraph& inc = eng.graph();
  ASSERT_NEAR(inc.critical_delay(), oracle.critical_delay(), 1e-12) << ctx;
  for (CellId c : nl.live_cells()) {
    TimingNodeId ei = inc.out_node(c);
    TimingNodeId oi = oracle.out_node(c);
    ASSERT_EQ(ei.valid(), oi.valid()) << ctx << " out node of " << nl.cell(c).name;
    if (ei.valid()) {
      ASSERT_NEAR(inc.arrival(ei), oracle.arrival(oi), 1e-12)
          << ctx << " arrival " << nl.cell(c).name;
      ASSERT_NEAR(inc.required(ei), oracle.required(oi), 1e-12)
          << ctx << " required " << nl.cell(c).name;
      ASSERT_NEAR(inc.slack(ei), oracle.slack(oi), 1e-12)
          << ctx << " slack " << nl.cell(c).name;
    }
    TimingNodeId es = inc.sink_node(c);
    TimingNodeId os = oracle.sink_node(c);
    ASSERT_EQ(es.valid(), os.valid()) << ctx << " sink node of " << nl.cell(c).name;
    if (es.valid()) {
      ASSERT_NEAR(inc.arrival(es), oracle.arrival(os), 1e-12)
          << ctx << " sink arrival " << nl.cell(c).name;
      ASSERT_NEAR(inc.required(es), oracle.required(os), 1e-12)
          << ctx << " sink required " << nl.cell(c).name;
      ASSERT_NEAR(inc.slack(es), oracle.slack(os), 1e-12)
          << ctx << " sink slack " << nl.cell(c).name;
    }
  }
}

/// Driver of the randomized op mix. Returns a short description of the op.
class OpMixer {
 public:
  OpMixer(Netlist& nl, Placement& pl, TimingEngine& eng, Rng& rng)
      : nl_(nl), pl_(pl), eng_(eng), rng_(rng) {}

  void random_move() {
    std::vector<CellId> cells = nl_.live_cells();
    CellId c = cells[rng_.next_below(cells.size())];
    const bool is_logic = nl_.cell(c).kind == CellKind::kLogic;
    const auto& slots =
        is_logic ? pl_.grid().logic_locations() : pl_.grid().io_locations();
    pl_.place(c, slots[rng_.next_below(slots.size())]);
    eng_.on_cell_moved(c);
  }

  void random_replicate() {
    // A logic cell with fanout >= 2; partition its fanouts between the
    // original and a replica placed at a random slot.
    std::vector<CellId> cands;
    for (CellId c : nl_.live_cells())
      if (nl_.cell(c).kind == CellKind::kLogic &&
          nl_.net(nl_.cell(c).output).sinks.size() >= 2)
        cands.push_back(c);
    if (cands.empty()) return;
    CellId orig = cands[rng_.next_below(cands.size())];
    CellId rep = nl_.replicate_cell(orig);
    const auto& slots = pl_.grid().logic_locations();
    pl_.place(rep, slots[rng_.next_below(slots.size())]);
    eng_.on_cell_rewired(rep);
    std::vector<Sink> sinks = nl_.net(nl_.cell(orig).output).sinks;
    for (const Sink& s : sinks) {
      if (rng_.next_below(2) == 0) continue;
      nl_.reassign_input(s.cell, s.pin, nl_.cell(rep).output);
      eng_.on_cell_rewired(s.cell);
    }
    drain(orig);
    drain(rep);  // possible when every fanout stayed with the original
  }

  void random_unify() {
    // Two live members of one equivalence class: move every fanout of the
    // first onto the second, deleting the drained cell (and recursively its
    // newly dead fan-in).
    std::vector<CellId> cells = nl_.live_cells();
    rng_.shuffle(cells);
    for (CellId a : cells) {
      if (nl_.cell(a).kind != CellKind::kLogic) continue;
      for (CellId b : cells) {
        if (a == b || !nl_.cell_alive(a) || !nl_.cell_alive(b)) continue;
        if (nl_.cell(b).kind != CellKind::kLogic || !nl_.equivalent(a, b)) continue;
        std::vector<CellId> rewired;
        for (const Sink& s : nl_.net(nl_.cell(a).output).sinks)
          rewired.push_back(s.cell);
        std::vector<CellId> deleted;
        nl_.unify(a, b, &deleted);
        for (CellId d : deleted) pl_.unplace(d);
        eng_.on_cells_rewired(rewired);
        eng_.on_cells_rewired(deleted);
        return;
      }
    }
  }

 private:
  void drain(CellId c) {
    if (!nl_.cell_alive(c)) return;
    std::vector<CellId> deleted;
    nl_.remove_if_redundant(c, &deleted);
    for (CellId d : deleted) {
      pl_.unplace(d);
      eng_.on_cell_rewired(d);
    }
  }

  Netlist& nl_;
  Placement& pl_;
  TimingEngine& eng_;
  Rng& rng_;
};

TEST(IncrementalTiming, RandomOpsMatchFromScratchOracle) {
  Netlist nl = make_circuit(42);
  FpgaGrid grid(FpgaGrid::min_grid_for(
      nl.num_logic() + 40, nl.num_input_pads() + nl.num_output_pads()));
  LinearDelayModel dm;
  Rng rng(7);
  Placement pl = random_placement(nl, grid, rng);

  TimingEngine eng(nl, pl, dm);
  expect_matches_oracle(eng, nl, pl, dm, "bootstrap");

  // Rollback scaffolding: snapshots of the netlist/placement taken at each
  // commit (the replication engine's Snapshot pattern).
  auto snap_nl = std::make_unique<Netlist>(nl);
  auto snap_pl = std::make_unique<Placement>(pl.with_netlist(*snap_nl));
  eng.commit();

  OpMixer mix(nl, pl, eng, rng);
  for (int step = 0; step < 300; ++step) {
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 55) {
      mix.random_move();
    } else if (roll < 75) {
      mix.random_replicate();
    } else if (roll < 90) {
      mix.random_unify();
    } else if (roll < 95) {
      eng.update();
      snap_nl = std::make_unique<Netlist>(nl);
      snap_pl = std::make_unique<Placement>(pl.with_netlist(*snap_nl));
      eng.commit();
    } else {
      nl = *snap_nl;
      pl = snap_pl->with_netlist(nl);
      eng.rollback();
    }
    eng.update();
    SCOPED_TRACE(step);
    expect_matches_oracle(eng, nl, pl, dm, "step");
    ASSERT_TRUE(nl.validate().empty()) << nl.validate();
  }
  EXPECT_GT(timing_counters().incremental_updates, 0u);
}

TEST(IncrementalTiming, BatchedDeltasMatchOracle) {
  // Many deltas folded into ONE update() — the replication engine's real
  // usage pattern (apply_embedding + unification + legalizer, then re-time).
  Netlist nl = make_circuit(43);
  FpgaGrid grid(FpgaGrid::min_grid_for(
      nl.num_logic() + 40, nl.num_input_pads() + nl.num_output_pads()));
  LinearDelayModel dm;
  Rng rng(11);
  Placement pl = random_placement(nl, grid, rng);
  TimingEngine eng(nl, pl, dm);
  OpMixer mix(nl, pl, eng, rng);

  for (int round = 0; round < 20; ++round) {
    for (int k = 0; k < 10; ++k) {
      const std::uint64_t roll = rng.next_below(10);
      if (roll < 6)
        mix.random_move();
      else if (roll < 8)
        mix.random_replicate();
      else
        mix.random_unify();
    }
    eng.update();
    SCOPED_TRACE(round);
    expect_matches_oracle(eng, nl, pl, dm, "batched round");
  }
}

TEST(IncrementalTiming, ParanoidModeSelfChecks) {
  Netlist nl = make_circuit(44, 60);
  FpgaGrid grid(FpgaGrid::min_grid_for(
      nl.num_logic() + 20, nl.num_input_pads() + nl.num_output_pads()));
  LinearDelayModel dm;
  Rng rng(3);
  Placement pl = random_placement(nl, grid, rng);
  TimingEngine eng(nl, pl, dm);
  eng.set_paranoid(true);
  const std::uint64_t checks_before = timing_counters().paranoid_checks;

  OpMixer mix(nl, pl, eng, rng);
  for (int step = 0; step < 40; ++step) {
    mix.random_move();
    if (step % 3 == 0) mix.random_replicate();
    // Paranoid mode cross-checks inside update() and throws on divergence.
    ASSERT_NO_THROW(eng.update());
  }
  EXPECT_GT(timing_counters().paranoid_checks, checks_before);
}

TEST(IncrementalTiming, ReplicationEngineDoesNotRebuildGraphs) {
  Netlist nl = make_circuit(45);
  FpgaGrid grid(FpgaGrid::min_grid_for(
      nl.num_logic() + 20, nl.num_input_pads() + nl.num_output_pads()));
  LinearDelayModel dm;
  AnnealerOptions aopt;
  aopt.inner_num = 0.3;
  aopt.seed = 5;
  Placement pl = anneal_placement(nl, grid, dm, aopt);

  TimingCounters& tc = timing_counters();
  const std::uint64_t builds_before = tc.graph_builds;
  const std::uint64_t incr_before = tc.incremental_updates;
  EngineOptions opt;
  opt.max_iterations = 25;
  run_replication_engine(nl, pl, dm, opt);
  // Exactly the one bootstrap build from the persistent engine; every
  // iteration (extraction, unification, legalization, collateral guard)
  // re-timed incrementally.
  EXPECT_EQ(tc.graph_builds - builds_before, 1u);
  EXPECT_GT(tc.incremental_updates, incr_before);
  EXPECT_GT(tc.rebuilds_avoided, 0u);
}

TEST(IncrementalTiming, AnnealerDoesNotRebuildGraphs) {
  Netlist nl = make_circuit(46, 60);
  FpgaGrid grid(FpgaGrid::min_grid_for(
      nl.num_logic() + 10, nl.num_input_pads() + nl.num_output_pads()));
  LinearDelayModel dm;
  TimingCounters& tc = timing_counters();
  const std::uint64_t builds_before = tc.graph_builds;
  AnnealerOptions opt;
  opt.inner_num = 0.3;
  opt.seed = 9;
  anneal_placement(nl, grid, dm, opt);
  // One bootstrap build; per-temperature criticality refreshes are
  // incremental updates over the accepted moves.
  EXPECT_EQ(tc.graph_builds - builds_before, 1u);
}

}  // namespace
}  // namespace repro
