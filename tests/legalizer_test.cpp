#include <gtest/gtest.h>

#include <stdexcept>

#include "audit/auditor.h"
#include "gen/circuit_gen.h"
#include "place/annealer.h"
#include "place/legalizer.h"
#include "test_helpers.h"
#include "timing/timing_graph.h"

namespace repro {
namespace {

using testing::TinyPlaced;

TEST(Legalizer, NoopOnLegalPlacement) {
  TinyPlaced t;
  LegalizerResult r = legalize_timing_driven(t.nl, *t.pl, t.dm);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.ripple_moves, 0);
  EXPECT_EQ(r.overlaps_resolved, 0);
}

TEST(Legalizer, ResolvesSingleOverlap) {
  TinyPlaced t;
  t.pl->place(t.g1, {2, 2});  // stack g1 on g3
  LegalizerResult r = legalize_timing_driven(t.nl, *t.pl, t.dm);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(t.pl->legal()) << t.pl->check_legal();
  EXPECT_GE(r.ripple_moves, 1);
  EXPECT_EQ(r.overlaps_resolved, 1);
}

TEST(Legalizer, ResolvesMultipleOverlaps) {
  TinyPlaced t;
  t.pl->place(t.g1, {2, 2});
  t.pl->place(t.g2, {2, 2});  // triple-stacked slot
  LegalizerResult r = legalize_timing_driven(t.nl, *t.pl, t.dm);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(t.pl->legal()) << t.pl->check_legal();
}

TEST(Legalizer, MovesCellsAtMostLocally) {
  // Ripple moves shift each cell by one slot; after resolving one overlap
  // the displaced cells stay near their origins.
  TinyPlaced t;
  Point g3_before = t.pl->location(t.g3);
  t.pl->place(t.g1, {2, 2});
  legalize_timing_driven(t.nl, *t.pl, t.dm);
  // Every live logic cell is within the 4x4 array and at most a few slots
  // from where it was.
  EXPECT_LE(manhattan(t.pl->location(t.g3), g3_before), 2);
}

TEST(Legalizer, UnifiesWhenRippleLandsOnEquivalent) {
  TinyPlaced t;
  // Replica of g3 placed on top of g3's slot neighbor; force a ripple from
  // that neighbor onto g3's slot by stacking.
  CellId rep = t.nl.replicate_cell(t.g3);
  // Give the replica a fanout so it is a "real" cell.
  t.nl.reassign_input(t.r, 0, t.nl.cell(rep).output);
  t.pl->place(rep, {2, 2});  // overlap with g3 directly
  LegalizerResult r = legalize_timing_driven(t.nl, *t.pl, t.dm);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(t.pl->legal()) << t.pl->check_legal();
  // Either the ripple separated them or unification merged them; both are
  // legal outcomes, but the netlist must stay valid either way.
  EXPECT_TRUE(t.nl.validate().empty()) << t.nl.validate();
}

TEST(Legalizer, FailsGracefullyWhenFull) {
  // 1x1 logic array with two logic cells: unsolvable.
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId g1 = nl.add_logic("g1", {nl.cell(a).output}, 0b10, false);
  CellId g2 = nl.add_logic("g2", {nl.cell(a).output}, 0b01, false);
  CellId po1 = nl.add_output_pad("po1");
  CellId po2 = nl.add_output_pad("po2");
  nl.connect(nl.cell(g1).output, po1, 0);
  nl.connect(nl.cell(g2).output, po2, 0);
  FpgaGrid grid(1, 2);
  Placement pl(nl, grid);
  pl.place(a, {0, 1});
  pl.place(g1, {1, 1});
  pl.place(g2, {1, 1});
  pl.place(po1, {2, 1});
  pl.place(po2, {2, 1});
  LinearDelayModel dm;
  LegalizerResult r = legalize_timing_driven(nl, pl, dm);
  EXPECT_FALSE(r.success);  // out of free slots, as the paper hits for ex5p
}

TEST(Legalizer, PrefersNotToDegradeTiming) {
  // A congested slot on the critical path: the legalizer should move the
  // *non-critical* occupant away (alpha = 0.95 favors timing).
  TinyPlaced t;
  // g2 near-critical; add an unrelated spare cell stacked on g3.
  CellId spare =
      t.nl.add_logic("spare", {t.nl.cell(t.pi0).output}, 0b10, false);
  CellId po3 = t.nl.add_output_pad("po3");
  t.nl.connect(t.nl.cell(spare).output, po3, 0);
  t.pl->place(po3, {0, 2});
  t.pl->place(spare, {2, 2});  // overlap with critical g3

  TimingGraph before(t.nl, *t.pl, t.dm);
  double crit_before = before.critical_delay();
  Point g3_loc = t.pl->location(t.g3);

  LegalizerResult r = legalize_timing_driven(t.nl, *t.pl, t.dm);
  EXPECT_TRUE(r.success);
  TimingGraph after(t.nl, *t.pl, t.dm);
  // The critical cell g3 should not have been displaced (the spare moves).
  EXPECT_EQ(t.pl->location(t.g3), g3_loc);
  EXPECT_LE(after.critical_delay(), crit_before + 1e-9);
}

TEST(Legalizer, LargeRandomizedStress) {
  CircuitSpec spec;
  spec.num_logic = 80;
  spec.num_inputs = 8;
  spec.num_outputs = 8;
  spec.depth = 6;
  spec.seed = 77;
  Netlist nl = generate_circuit(spec);
  FpgaGrid grid(FpgaGrid::min_grid_for(
      nl.num_logic() + 10, nl.num_input_pads() + nl.num_output_pads()));
  Rng rng(3);
  Placement pl = random_placement(nl, grid, rng);
  // Stack 10 random logic cells onto occupied slots.
  auto cells = nl.live_cells();
  int stacked = 0;
  for (CellId c : cells) {
    if (nl.cell(c).kind != CellKind::kLogic) continue;
    for (CellId d : cells) {
      if (d == c || nl.cell(d).kind != CellKind::kLogic) continue;
      pl.place(c, pl.location(d));
      ++stacked;
      break;
    }
    if (stacked >= 10) break;
  }
  EXPECT_FALSE(pl.legal());
  LinearDelayModel dm;
  LegalizerResult r = legalize_timing_driven(nl, pl, dm);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(pl.legal()) << pl.check_legal();
  EXPECT_TRUE(nl.validate().empty()) << nl.validate();
}

// ---- adversarial seeds: repair or report, never corrupt -------------------

// Occupant-list <-> coordinate agreement, via the audit subsystem's placement
// battery. Legality findings (over capacity, incompatible kinds) are allowed
// here — a failed repair may leave the placement illegal — but the occupant
// lists and the coordinate array must still agree with each other.
bool occupant_lists_consistent(const Netlist& nl, const Placement& pl) {
  AuditOptions opt;
  opt.level = AuditLevel::kStage;
  const AuditReport rep = Auditor(opt).check_placement(nl, pl, "test");
  for (const Finding& f : rep.findings) {
    if (f.severity < AuditSeverity::kError) continue;
    if (f.message.find("over capacity") != std::string::npos) continue;
    if (f.message.find("kind-incompatible") != std::string::npos) continue;
    ADD_FAILURE() << "occupant-list corruption: " << f.to_jsonl();
    return false;
  }
  return true;
}

TEST(Legalizer, RepairsEveryCellStackedOnOneSlot) {
  // Worst-case over-capacity seed: the entire logic array's population
  // dropped on a single location. The legalizer must spread it back out.
  CircuitSpec spec;
  spec.num_logic = 60;
  spec.num_inputs = 8;
  spec.num_outputs = 8;
  spec.depth = 6;
  spec.seed = 99;
  Netlist nl = generate_circuit(spec);
  FpgaGrid grid(FpgaGrid::min_grid_for(
      nl.num_logic() + 10, nl.num_input_pads() + nl.num_output_pads()));
  Rng rng(5);
  Placement pl = random_placement(nl, grid, rng);
  for (CellId c : nl.live_cells())
    if (nl.cell(c).kind == CellKind::kLogic) pl.place(c, {1, 1});
  ASSERT_FALSE(pl.legal());

  LinearDelayModel dm;
  LegalizerResult r = legalize_timing_driven(nl, pl, dm);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(pl.legal()) << pl.check_legal();
  EXPECT_TRUE(occupant_lists_consistent(nl, pl));
}

TEST(Legalizer, ReportsFailureWithoutCorruptionWhenHopelesslyOverfull) {
  // More logic cells than the whole array holds: repair is impossible; the
  // legalizer must report failure and leave a coherent (if overfull) state.
  CircuitSpec spec;
  spec.num_logic = 30;
  spec.num_inputs = 4;
  spec.num_outputs = 4;
  spec.seed = 42;
  Netlist nl = generate_circuit(spec);
  FpgaGrid grid(4, 8);  // 16 logic slots for 30 logic cells
  Placement pl(nl, grid);
  int i = 0;
  for (CellId c : nl.live_cells()) {
    const Cell& cell = nl.cell(c);
    if (cell.kind == CellKind::kLogic) {
      pl.place(c, {1 + (i % 4), 1 + ((i / 4) % 4)});
      ++i;
    } else {
      pl.place(c, {0, 1});  // pile the pads on one IO location
    }
  }
  LinearDelayModel dm;
  LegalizerResult r = legalize_timing_driven(nl, pl, dm);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.failure.empty());
  EXPECT_TRUE(occupant_lists_consistent(nl, pl));
}

TEST(Legalizer, ZeroAreaGridFailsCleanly) {
  // FpgaGrid(0) has no logic slots at all (extent 2, all four locations are
  // corners). Any logic cell is unplaceable; the legalizer must report, not
  // loop or crash.
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId g = nl.add_logic("g", {nl.cell(a).output}, 0b10, false);
  CellId po = nl.add_output_pad("po");
  nl.connect(nl.cell(g).output, po, 0);
  FpgaGrid grid(0, 2);
  EXPECT_TRUE(grid.logic_locations().empty());
  Placement pl(nl, grid);
  pl.place(a, {0, 0});
  pl.place(g, {1, 1});
  pl.place(po, {0, 1});
  LinearDelayModel dm;
  LegalizerResult r = legalize_timing_driven(nl, pl, dm);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(occupant_lists_consistent(nl, pl));
}

TEST(Placement, RejectsOutOfGridCoordinates) {
  // Coordinates can come from untrusted placement files and snapshots;
  // place() must throw instead of indexing out of the occupant array, and a
  // rejected move must leave the previous state untouched.
  TinyPlaced t;
  const Point before = t.pl->location(t.g1);
  EXPECT_THROW(t.pl->place(t.g1, {-1, 0}), std::out_of_range);
  EXPECT_THROW(t.pl->place(t.g1, {0, -7}), std::out_of_range);
  EXPECT_THROW(t.pl->place(t.g1, {t.grid->extent(), 1}), std::out_of_range);
  EXPECT_THROW(t.pl->place(t.g1, {1, 100000}), std::out_of_range);
  EXPECT_TRUE(t.pl->placed(t.g1));
  EXPECT_EQ(t.pl->location(t.g1), before);
  EXPECT_TRUE(occupant_lists_consistent(t.nl, *t.pl));
}

}  // namespace
}  // namespace repro
