#include <gtest/gtest.h>

#include "gen/circuit_gen.h"
#include "netlist/sim.h"
#include "replicate/local_replication.h"
#include "test_helpers.h"
#include "timing/timing_graph.h"

namespace repro {
namespace {

using testing::TinyPlaced;

TEST(LocalReplication, NoopOnMonotoneCriticalPath) {
  // TinyPlaced's critical path pi0->g1->g3->po0 is a staircase... except the
  // last hop turns back in y. Verify the algorithm never makes things worse.
  TinyPlaced t;
  Netlist golden = t.nl;
  LocalReplicationOptions opt;
  opt.max_iterations = 50;
  LocalReplicationResult r = run_local_replication(t.nl, *t.pl, t.dm, opt);
  EXPECT_LE(r.final_critical, r.initial_critical + 1e-9);
  EXPECT_TRUE(t.pl->legal()) << t.pl->check_legal();
  EXPECT_TRUE(t.nl.validate().empty()) << t.nl.validate();
  EXPECT_TRUE(functionally_equivalent(golden, t.nl, 32, 2));
}

TEST(LocalReplication, StraightensForcedDetour) {
  // Rebuild the Fig. 1/2 situation: cell c with two fanouts whose critical
  // path detours through it.
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId e = nl.add_input_pad("e");
  CellId c = nl.add_logic("c", {nl.cell(a).output, nl.cell(e).output}, 0b0110,
                          false);
  CellId gb = nl.add_logic("gb", {nl.cell(c).output}, 0b10, false);
  CellId gd = nl.add_logic("gd", {nl.cell(c).output}, 0b10, false);
  CellId b = nl.add_output_pad("b");
  CellId d = nl.add_output_pad("d");
  nl.connect(nl.cell(gb).output, b, 0);
  nl.connect(nl.cell(gd).output, d, 0);

  FpgaGrid grid(6, 2);
  Placement pl(nl, grid);
  // a and b on the left, d and e on the right, c forced to one side.
  pl.place(a, {0, 2});
  pl.place(b, {0, 4});
  pl.place(e, {7, 2});
  pl.place(d, {7, 4});
  pl.place(c, {1, 3});  // near the left pair: paths from e detour
  pl.place(gb, {1, 4});
  pl.place(gd, {6, 4});

  LinearDelayModel dm;
  TimingGraph before(nl, pl, dm);
  double crit_before = before.critical_delay();

  Netlist golden = nl;
  LocalReplicationOptions opt;
  opt.seed = 3;
  LocalReplicationResult r = run_local_replication(nl, pl, dm, opt);
  EXPECT_LT(r.final_critical, crit_before - 1e-9);
  EXPECT_GE(r.replications + r.relocations, 1);
  EXPECT_TRUE(pl.legal()) << pl.check_legal();
  EXPECT_TRUE(functionally_equivalent(golden, nl, 64, 11));
}

TEST(LocalReplication, GeneratedCircuitImprovesAndStaysEquivalent) {
  CircuitSpec spec;
  spec.num_logic = 100;
  spec.num_inputs = 8;
  spec.num_outputs = 8;
  spec.registered_fraction = 0.2;
  spec.depth = 7;
  spec.seed = 31;
  Netlist nl = generate_circuit(spec);
  Netlist golden = nl;
  FpgaGrid grid(FpgaGrid::min_grid_for(
      nl.num_logic() + 8, nl.num_input_pads() + nl.num_output_pads()));
  Rng rng(4);
  // Deliberately mediocre placement (random) so there is room to improve.
  Placement pl = [&] {
    Placement p(nl, grid);
    auto logic = grid.logic_locations();
    auto io = grid.io_locations();
    std::size_t li = 0;
    std::size_t ii = 0;
    for (CellId cid : nl.live_cells()) {
      if (nl.cell(cid).kind == CellKind::kLogic)
        p.place(cid, logic[li++]);
      else
        p.place(cid, io[ii++ % io.size()]);
    }
    return p;
  }();

  LinearDelayModel dm;
  LocalReplicationOptions opt;
  opt.seed = 5;
  LocalReplicationResult r = run_local_replication(nl, pl, dm, opt);
  EXPECT_LE(r.final_critical, r.initial_critical + 1e-9);
  EXPECT_TRUE(pl.legal()) << pl.check_legal();
  EXPECT_TRUE(nl.validate().empty()) << nl.validate();
  EXPECT_TRUE(functionally_equivalent(golden, nl, 64, 17));
}

TEST(LocalReplication, BestOfThreeNeverWorseThanSingle) {
  // The paper's protocol: randomized algorithm, three runs, keep the best.
  TinyPlaced base;
  double best3 = 1e18;
  double single = 0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    TinyPlaced t;
    LocalReplicationOptions opt;
    opt.seed = seed;
    LocalReplicationResult r = run_local_replication(t.nl, *t.pl, t.dm, opt);
    if (seed == 1) single = r.final_critical;
    best3 = std::min(best3, r.final_critical);
  }
  EXPECT_LE(best3, single + 1e-12);
}

}  // namespace
}  // namespace repro
