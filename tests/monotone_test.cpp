#include <gtest/gtest.h>

#include "test_helpers.h"
#include "timing/monotone.h"
#include "timing/timing_graph.h"

namespace repro {
namespace {

using testing::TinyPlaced;

TEST(LocalMonotone, StraightLineIsMonotone) {
  EXPECT_FALSE(locally_nonmonotone({0, 0}, {2, 0}, {4, 0}));
  EXPECT_FALSE(locally_nonmonotone({0, 0}, {2, 2}, {4, 4}));
}

TEST(LocalMonotone, StaircaseIsMonotone) {
  // Any staircase within the bounding box is monotone under Manhattan.
  EXPECT_FALSE(locally_nonmonotone({0, 0}, {3, 1}, {4, 4}));
}

TEST(LocalMonotone, DetourDetected) {
  EXPECT_TRUE(locally_nonmonotone({0, 0}, {5, 0}, {2, 0}));   // overshoot
  EXPECT_TRUE(locally_nonmonotone({0, 0}, {0, 3}, {4, 0}));   // sidestep
  EXPECT_TRUE(locally_nonmonotone({0, 0}, {-1, 0}, {4, 0}));  // backtrack
}

TEST(LocalMonotone, PaperFig3Limitation) {
  // Fig. 3's structural limitation: every consecutive triple is locally
  // monotone, yet the whole path detours. A U-shaped path shows it: L-turns
  // are monotone under the Manhattan metric, but the two turns add up.
  Point s{0, 0}, a{3, 0}, b{3, 3}, tt{0, 3};
  EXPECT_FALSE(locally_nonmonotone(s, a, b));
  EXPECT_FALSE(locally_nonmonotone(a, b, tt));
  // The full path detours: d(s,t) = 3 while the path walks 9.
  EXPECT_LT(manhattan(s, tt), manhattan(s, a) + manhattan(a, b) + manhattan(b, tt));
}

TEST(DetourRatio, TinyCircuitCriticalPathMonotone) {
  TinyPlaced t;
  TimingGraph tg(t.nl, *t.pl, t.dm);
  auto path = tg.critical_path();
  // pi0(0,1) -> g1(1,1) -> g3(2,2) -> po0(3,0): length 1+2+3 = 6; direct 4.
  EXPECT_NEAR(path_detour_ratio(tg, path), 6.0 / 4.0, 1e-12);
}

TEST(DetourRatio, DegeneratePathIsOne) {
  TinyPlaced t;
  TimingGraph tg(t.nl, *t.pl, t.dm);
  EXPECT_DOUBLE_EQ(path_detour_ratio(tg, {}), 1.0);
  EXPECT_DOUBLE_EQ(path_detour_ratio(tg, {tg.out_node(t.g1)}), 1.0);
}

TEST(MonotoneBound, TinyCircuitHandValues) {
  TinyPlaced t;
  TimingGraph tg(t.nl, *t.pl, t.dm);
  // po0: slowest source bound is via pi1: 0.5 + d((0,3),(3,0))=6 + 2 LUTs
  // + pad 0.5 = 9.0 (that path is already monotone).
  EXPECT_DOUBLE_EQ(monotone_lower_bound_for_sink(tg, tg.sink_node(t.po0)), 9.0);
  // r.D via pi0/pi1: 0.5 + 4 + 2*1 + 1 = 7.5.
  EXPECT_DOUBLE_EQ(monotone_lower_bound_for_sink(tg, tg.sink_node(t.r)), 7.5);
  // po1 via r.Q: 0.25 + 2 + 0 LUTs + 0.5 = 2.75.
  EXPECT_DOUBLE_EQ(monotone_lower_bound_for_sink(tg, tg.sink_node(t.po1)), 2.75);
  EXPECT_DOUBLE_EQ(monotone_lower_bound(tg), 9.0);
}

TEST(MonotoneBound, NeverExceedsActualDelay) {
  TinyPlaced t;
  TimingGraph tg(t.nl, *t.pl, t.dm);
  for (TimingNodeId s : tg.sinks())
    EXPECT_LE(monotone_lower_bound_for_sink(tg, s), tg.arrival(s) + 1e-9);
}

TEST(MonotoneBound, DetectsNonMonotonePotential) {
  // Put g3 far out of the way: the bound stays (straight-line) while the
  // actual delay grows, leaving optimization headroom.
  TinyPlaced t;
  TimingGraph tg(t.nl, *t.pl, t.dm);
  double bound_before = monotone_lower_bound(tg);
  t.pl->place(t.g3, {1, 4});
  tg.run_sta();
  EXPECT_GT(tg.critical_delay(), bound_before);
  // The bound is location-independent for the movable internals (it depends
  // on the fixed sources/sinks only), so it is unchanged.
  EXPECT_DOUBLE_EQ(monotone_lower_bound(tg), bound_before);
}

}  // namespace
}  // namespace repro
