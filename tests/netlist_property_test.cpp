// Randomized editing-sequence property test: arbitrary interleavings of the
// replication engine's netlist edits (replicate, reassign-to-equivalent,
// unify, redundancy removal) must preserve structural invariants and
// functional equivalence at every step.

#include <gtest/gtest.h>

#include "gen/circuit_gen.h"
#include "netlist/sim.h"
#include "util/rng.h"

namespace repro {
namespace {

class NetlistEditFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetlistEditFuzz, RandomEditSequencesStaySoundAndEquivalent) {
  CircuitSpec spec;
  spec.num_logic = 60;
  spec.num_inputs = 6;
  spec.num_outputs = 6;
  spec.registered_fraction = 0.25;
  spec.depth = 6;
  spec.seed = GetParam();
  Netlist nl = generate_circuit(spec);
  Netlist golden = nl;
  Rng rng(GetParam() * 31 + 7);

  std::vector<CellId> replicas;
  for (int step = 0; step < 60; ++step) {
    const auto live = nl.live_cells();
    switch (rng.next_below(3)) {
      case 0: {  // replicate a random logic cell
        CellId c = live[rng.next_below(live.size())];
        if (nl.cell(c).kind != CellKind::kLogic) break;
        replicas.push_back(nl.replicate_cell(c));
        break;
      }
      case 1: {  // move a random sink of an original onto one of its replicas
        if (replicas.empty()) break;
        CellId r = replicas[rng.next_below(replicas.size())];
        if (!nl.cell_alive(r)) break;
        auto members = nl.eq_members(nl.cell(r).eq_class);
        CellId donor = members[rng.next_below(members.size())];
        const auto& sinks = nl.net(nl.cell(donor).output).sinks;
        if (sinks.empty()) break;
        Sink s = sinks[rng.next_below(sinks.size())];
        nl.reassign_input(s.cell, s.pin, nl.cell(r).output);
        break;
      }
      case 2: {  // unify a random replica back into another member
        if (replicas.empty()) break;
        CellId r = replicas[rng.next_below(replicas.size())];
        if (!nl.cell_alive(r)) break;
        auto members = nl.eq_members(nl.cell(r).eq_class);
        if (members.size() < 2) break;
        CellId into = members[rng.next_below(members.size())];
        if (into == r) break;
        nl.unify(r, into);
        break;
      }
    }
    ASSERT_TRUE(nl.validate().empty()) << "step " << step << ": " << nl.validate();
  }
  EXPECT_TRUE(functionally_equivalent(golden, nl, 48, GetParam() * 13 + 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistEditFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace repro
