#include <gtest/gtest.h>

#include "netlist/netlist.h"

namespace repro {
namespace {

/// a, b -> AND x -> (y = NOT x) -> po ; x also feeds po2.
struct SmallCircuit {
  Netlist nl;
  CellId a, b, x, y, po, po2;

  SmallCircuit() {
    a = nl.add_input_pad("a");
    b = nl.add_input_pad("b");
    x = nl.add_logic("x", {nl.cell(a).output, nl.cell(b).output}, 0b1000, false);
    y = nl.add_logic("y", {nl.cell(x).output}, 0b01, false);
    po = nl.add_output_pad("po");
    nl.connect(nl.cell(y).output, po, 0);
    po2 = nl.add_output_pad("po2");
    nl.connect(nl.cell(x).output, po2, 0);
  }
};

TEST(Netlist, ConstructionCounts) {
  SmallCircuit c;
  EXPECT_EQ(c.nl.num_live_cells(), 6u);
  EXPECT_EQ(c.nl.num_logic(), 2u);
  EXPECT_EQ(c.nl.num_input_pads(), 2u);
  EXPECT_EQ(c.nl.num_output_pads(), 2u);
  EXPECT_EQ(c.nl.num_registered(), 0u);
  EXPECT_TRUE(c.nl.validate().empty()) << c.nl.validate();
}

TEST(Netlist, SinkBackLinks) {
  SmallCircuit c;
  const Net& xout = c.nl.net(c.nl.cell(c.x).output);
  ASSERT_EQ(xout.sinks.size(), 2u);  // y pin 0 and po2 pin 0
  EXPECT_EQ(xout.driver, c.x);
}

TEST(Netlist, ReplicateCreatesEquivalentCell) {
  SmallCircuit c;
  CellId r = c.nl.replicate_cell(c.x);
  EXPECT_TRUE(c.nl.equivalent(r, c.x));
  const Cell& rc = c.nl.cell(r);
  EXPECT_EQ(rc.function, c.nl.cell(c.x).function);
  EXPECT_EQ(rc.inputs, c.nl.cell(c.x).inputs);
  EXPECT_TRUE(c.nl.net(rc.output).sinks.empty());
  EXPECT_TRUE(c.nl.validate().empty()) << c.nl.validate();
}

TEST(Netlist, ReplicaAppearsInEqClass) {
  SmallCircuit c;
  CellId r = c.nl.replicate_cell(c.x);
  auto members = c.nl.eq_members(c.nl.cell(c.x).eq_class);
  EXPECT_EQ(members.size(), 2u);
  EXPECT_TRUE((members[0] == c.x && members[1] == r) ||
              (members[0] == r && members[1] == c.x));
}

TEST(Netlist, ReassignInputMovesSink) {
  SmallCircuit c;
  CellId r = c.nl.replicate_cell(c.x);
  c.nl.reassign_input(c.y, 0, c.nl.cell(r).output);
  EXPECT_EQ(c.nl.cell(c.y).inputs[0], c.nl.cell(r).output);
  EXPECT_EQ(c.nl.net(c.nl.cell(r).output).sinks.size(), 1u);
  EXPECT_EQ(c.nl.net(c.nl.cell(c.x).output).sinks.size(), 1u);  // only po2
  EXPECT_TRUE(c.nl.validate().empty()) << c.nl.validate();
}

TEST(Netlist, ReassignInputToSameNetIsNoop) {
  SmallCircuit c;
  NetId before = c.nl.cell(c.y).inputs[0];
  c.nl.reassign_input(c.y, 0, before);
  EXPECT_EQ(c.nl.cell(c.y).inputs[0], before);
  EXPECT_TRUE(c.nl.validate().empty());
}

TEST(Netlist, StealFanoutMovesAllSinks) {
  SmallCircuit c;
  CellId r = c.nl.replicate_cell(c.x);
  c.nl.steal_fanout(c.x, r);
  EXPECT_TRUE(c.nl.net(c.nl.cell(c.x).output).sinks.empty());
  EXPECT_EQ(c.nl.net(c.nl.cell(r).output).sinks.size(), 2u);
  EXPECT_TRUE(c.nl.validate().empty()) << c.nl.validate();
}

TEST(Netlist, RemoveIfRedundantLeavesUsedCells) {
  SmallCircuit c;
  EXPECT_EQ(c.nl.remove_if_redundant(c.x), 0);
  EXPECT_TRUE(c.nl.cell_alive(c.x));
}

TEST(Netlist, RemoveIfRedundantDeletesFanoutFree) {
  SmallCircuit c;
  CellId r = c.nl.replicate_cell(c.x);  // no sinks
  std::vector<CellId> deleted;
  EXPECT_EQ(c.nl.remove_if_redundant(r, &deleted), 1);
  EXPECT_FALSE(c.nl.cell_alive(r));
  ASSERT_EQ(deleted.size(), 1u);
  EXPECT_EQ(deleted[0], r);
  EXPECT_TRUE(c.nl.validate().empty()) << c.nl.validate();
}

TEST(Netlist, RemoveIfRedundantRecursesThroughChain) {
  // Chain: a -> g1 -> g2 -> (no sink). Deleting g2 must also delete g1.
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId g1 = nl.add_logic("g1", {nl.cell(a).output}, 0b10, false);
  CellId g2 = nl.add_logic("g2", {nl.cell(g1).output}, 0b10, false);
  EXPECT_EQ(nl.remove_if_redundant(g2), 2);
  EXPECT_FALSE(nl.cell_alive(g1));
  EXPECT_FALSE(nl.cell_alive(g2));
  EXPECT_TRUE(nl.cell_alive(a));  // pads are never deleted
  EXPECT_TRUE(nl.validate().empty()) << nl.validate();
}

TEST(Netlist, RecursionStopsAtSharedFanin) {
  // a -> g1 -> {g2, po}; deleting g2 must keep g1 (po still uses it).
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId g1 = nl.add_logic("g1", {nl.cell(a).output}, 0b10, false);
  CellId g2 = nl.add_logic("g2", {nl.cell(g1).output}, 0b10, false);
  CellId po = nl.add_output_pad("po");
  nl.connect(nl.cell(g1).output, po, 0);
  EXPECT_EQ(nl.remove_if_redundant(g2), 1);
  EXPECT_TRUE(nl.cell_alive(g1));
}

TEST(Netlist, UnifyMovesFanoutAndDeletes) {
  SmallCircuit c;
  CellId r = c.nl.replicate_cell(c.x);
  // Give the replica a sink, then unify it back onto x.
  c.nl.reassign_input(c.y, 0, c.nl.cell(r).output);
  int deleted = c.nl.unify(r, c.x);
  EXPECT_EQ(deleted, 1);
  EXPECT_FALSE(c.nl.cell_alive(r));
  EXPECT_EQ(c.nl.cell(c.y).inputs[0], c.nl.cell(c.x).output);
  EXPECT_TRUE(c.nl.validate().empty()) << c.nl.validate();
}

TEST(Netlist, GrowInputAddsPin) {
  SmallCircuit c;
  CellId extra = c.nl.add_input_pad("extra");
  c.nl.grow_input(c.y, c.nl.cell(extra).output, 0b0110);
  EXPECT_EQ(c.nl.cell(c.y).inputs.size(), 2u);
  EXPECT_EQ(c.nl.cell(c.y).function, 0b0110u);
  EXPECT_TRUE(c.nl.validate().empty()) << c.nl.validate();
}

TEST(Netlist, LiveCellsSkipsDead) {
  SmallCircuit c;
  CellId r = c.nl.replicate_cell(c.x);
  c.nl.remove_if_redundant(r);
  auto live = c.nl.live_cells();
  EXPECT_EQ(live.size(), 6u);
  for (CellId id : live) EXPECT_NE(id, r);
}

TEST(Netlist, EquivalenceIsClassBased) {
  SmallCircuit c;
  EXPECT_FALSE(c.nl.equivalent(c.x, c.y));
  CellId r1 = c.nl.replicate_cell(c.x);
  CellId r2 = c.nl.replicate_cell(r1);
  EXPECT_TRUE(c.nl.equivalent(r2, c.x));
  EXPECT_TRUE(c.nl.equivalent(r1, r2));
}

TEST(Netlist, RegisteredFlagTracked) {
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId f = nl.add_logic("f", {nl.cell(a).output}, 0b10, true);
  EXPECT_TRUE(nl.cell(f).registered);
  EXPECT_EQ(nl.num_registered(), 1u);
}

TEST(Netlist, ValidateCatchesDanglingPin) {
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  (void)a;
  CellId po = nl.add_output_pad("po");
  (void)po;  // pin 0 left unconnected
  EXPECT_FALSE(nl.validate().empty());
}

}  // namespace
}  // namespace repro
