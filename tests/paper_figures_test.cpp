// Directed tests reproducing the paper's illustrative figures, so each
// pictured behavior is pinned by an executable check:
//
//   Fig. 1/2   forced nonmonotone paths straightened by one replication
//   Fig. 3     the local-monotonicity limitation (LR stuck, engine not)
//   Fig. 8     replication-tree construction with reconvergence terminators
//   Fig. 9     eps-SPT excludes cells whose slowest paths are too fast
//   Fig. 13    postprocess unification after relocation

#include <gtest/gtest.h>

#include "netlist/sim.h"
#include "place/placement.h"
#include "replicate/engine.h"
#include "replicate/extraction.h"
#include "replicate/local_replication.h"
#include "replicate/replication_tree.h"
#include "timing/monotone.h"
#include "timing/spt.h"
#include "timing/timing_graph.h"

namespace repro {
namespace {

// ---------------------------------------------------------------------------
// Fig. 1 / Fig. 2

struct Fig1Circuit {
  Netlist nl;
  FpgaGrid grid{8, 2};
  LinearDelayModel dm;
  CellId a, e, c, gb, gd, b, d;
  std::unique_ptr<Placement> pl;

  Fig1Circuit() {
    a = nl.add_input_pad("a");
    e = nl.add_input_pad("e");
    c = nl.add_logic("c", {nl.cell(a).output, nl.cell(e).output}, 0b0110, false);
    gb = nl.add_logic("gb", {nl.cell(c).output}, 0b10, false);
    gd = nl.add_logic("gd", {nl.cell(c).output}, 0b10, false);
    b = nl.add_output_pad("b");
    d = nl.add_output_pad("d");
    nl.connect(nl.cell(gb).output, b, 0);
    nl.connect(nl.cell(gd).output, d, 0);
    pl = std::make_unique<Placement>(nl, grid);
    pl->place(a, {0, 3});
    pl->place(b, {0, 6});
    pl->place(e, {9, 3});
    pl->place(d, {9, 6});
    pl->place(gb, {1, 6});
    pl->place(gd, {8, 6});
    pl->place(c, {2, 4});
  }
};

TEST(Fig1PathStraightening, CentralCellForcesDetour) {
  Fig1Circuit f;
  TimingGraph tg(f.nl, *f.pl, f.dm);
  // Wherever c sits, one of the four input-to-output paths detours: with c
  // on the left, the e -> ... -> b path walks far over its direct distance.
  EXPECT_GT(path_detour_ratio(tg, tg.critical_path()), 1.5);
}

TEST(Fig1PathStraightening, OneReplicationRestoresMonotonicity) {
  Fig1Circuit f;
  Netlist golden = f.nl;
  EngineOptions opt;
  opt.max_iterations = 20;
  EngineResult r = run_replication_engine(f.nl, *f.pl, f.dm, opt);
  EXPECT_GE(r.total_replicated, 1);
  TimingGraph tg(f.nl, *f.pl, f.dm);
  EXPECT_LT(tg.critical_delay(), r.initial_critical);
  EXPECT_NEAR(path_detour_ratio(tg, tg.critical_path()), 1.0, 0.35);
  EXPECT_TRUE(functionally_equivalent(golden, f.nl, 64, 12));
  // Fig. 2's point: total wirelength stays almost the same.
  EXPECT_LT(f.pl->total_wirelength(), 1.5 * 24.0);
}

// ---------------------------------------------------------------------------
// Fig. 3: a U-shaped critical path defeats local monotonicity but not the
// tree embedder.

struct Fig3Circuit {
  Netlist nl;
  FpgaGrid grid{8, 2};
  LinearDelayModel dm;
  std::unique_ptr<Placement> pl;
  CellId s, ca, cb, t;

  Fig3Circuit() {
    s = nl.add_input_pad("s");
    ca = nl.add_logic("a", {nl.cell(s).output}, 0b10, false);
    cb = nl.add_logic("b", {nl.cell(ca).output}, 0b10, false);
    CellId c2 = nl.add_logic("c2", {nl.cell(cb).output}, 0b10, false);
    t = nl.add_output_pad("t");
    nl.connect(nl.cell(c2).output, t, 0);
    pl = std::make_unique<Placement>(nl, grid);
    // U shape: out to the right, down, and back left — every pair of
    // consecutive hops is an L-turn (monotone), the whole walk is not.
    pl->place(s, {0, 2});
    pl->place(ca, {6, 2});
    pl->place(cb, {6, 6});
    pl->place(c2, {1, 6});
    pl->place(t, {0, 6});
  }
};

TEST(Fig3LocalMonotonicityLimit, AllTriplesMonotoneYetPathDetours) {
  Fig3Circuit f;
  TimingGraph tg(f.nl, *f.pl, f.dm);
  auto path = tg.critical_path();
  // The full path detours...
  EXPECT_GT(path_detour_ratio(tg, path), 1.5);
  // ...yet every interior triple is locally monotone (L-turns), so local
  // replication has no candidate on it.
  for (std::size_t i = 0; i + 2 < path.size(); ++i) {
    Point p1 = f.pl->location(tg.node(path[i]).cell);
    Point p2 = f.pl->location(tg.node(path[i + 1]).cell);
    Point p3 = f.pl->location(tg.node(path[i + 2]).cell);
    EXPECT_FALSE(locally_nonmonotone(p1, p2, p3))
        << "triple " << i << " unexpectedly nonmonotone";
  }
}

TEST(Fig3LocalMonotonicityLimit, EngineStraightensWhatLRCannot) {
  Fig3Circuit lr_case;
  LocalReplicationOptions lr_opt;
  LocalReplicationResult lr =
      run_local_replication(lr_case.nl, *lr_case.pl, lr_case.dm, lr_opt);
  // The paper's Fig. 3 point: no locally nonmonotone candidate -> no gain.
  EXPECT_NEAR(lr.final_critical, lr.initial_critical, 1e-9);

  Fig3Circuit en_case;
  EngineOptions opt;
  opt.max_iterations = 20;
  EngineResult r = run_replication_engine(en_case.nl, *en_case.pl, en_case.dm, opt);
  EXPECT_LT(r.final_critical, r.initial_critical - 1e-9);
}

// ---------------------------------------------------------------------------
// Fig. 8: replication-tree construction.

struct Fig8Circuit {
  Netlist nl;
  FpgaGrid grid{6, 2};
  LinearDelayModel dm;
  std::unique_ptr<Placement> pl;
  CellId p1, p2, c, b, a, d, f, po;

  Fig8Circuit() {
    p1 = nl.add_input_pad("p1");
    p2 = nl.add_input_pad("p2");
    c = nl.add_logic("c", {nl.cell(p1).output}, 0b10, false);
    b = nl.add_logic("b", {nl.cell(p2).output}, 0b10, false);
    a = nl.add_logic("a", {nl.cell(c).output}, 0b10, false);
    d = nl.add_logic("d",
                     {nl.cell(a).output, nl.cell(b).output, nl.cell(c).output},
                     0b01101001, false);
    f = nl.add_logic("f", {nl.cell(d).output, nl.cell(c).output}, 0b0110, true);
    po = nl.add_output_pad("po");
    nl.connect(nl.cell(f).output, po, 0);
    pl = std::make_unique<Placement>(nl, grid);
    pl->place(p1, {0, 2});
    pl->place(p2, {0, 4});
    pl->place(c, {1, 2});
    pl->place(b, {1, 4});
    pl->place(a, {2, 2});
    pl->place(d, {3, 3});
    pl->place(f, {4, 3});
    pl->place(po, {7, 3});
  }
};

TEST(Fig8ReplicationTree, ConstructionMatchesPaper) {
  Fig8Circuit fig;
  TimingGraph tg(fig.nl, *fig.pl, fig.dm);
  // Root the tree at f's D input with a wide eps so the whole cone is taken.
  Spt spt = extract_eps_spt(tg, tg.sink_node(fig.f), 100.0);
  ReplicationTree rt = build_replication_tree(tg, spt);

  // The paper copies {f(root), d, a, b, c}: four internal copies + root.
  EXPECT_EQ(rt.root_info.cell, fig.f);
  EXPECT_EQ(rt.num_internal(), 4u);

  const ReplicationTree::InternalInfo* d_info = nullptr;
  const ReplicationTree::InternalInfo* a_info = nullptr;
  for (const auto& info : rt.internals) {
    if (info.cell == fig.d) d_info = &info;
    if (info.cell == fig.a) a_info = &info;
  }
  ASSERT_NE(d_info, nullptr);
  ASSERT_NE(a_info, nullptr);

  // d^R: pins 0 (a) and 1 (b) come from copies; pin 2 connects to the
  // ORIGINAL c — the Leaf-DAG reconvergence terminator of Fig. 8.
  EXPECT_TRUE(d_info->pin_is_internal[0]);
  EXPECT_TRUE(d_info->pin_is_internal[1]);
  EXPECT_FALSE(d_info->pin_is_internal[2]);
  const FaninTreeNode& c_leaf = rt.tree.node(d_info->pin_child[2]);
  EXPECT_EQ(c_leaf.cell, fig.c);
  EXPECT_FALSE(c_leaf.is_real_input);
  EXPECT_DOUBLE_EQ(c_leaf.leaf_arrival, tg.arrival(tg.out_node(fig.c)));

  // a^R receives its input from c^R (the tree edge (c, a)).
  EXPECT_TRUE(a_info->pin_is_internal[0]);

  // f (the root) takes pin 0 from d^R and keeps pin 1 on the original c.
  EXPECT_TRUE(rt.root_info.pin_is_internal[0]);
  EXPECT_FALSE(rt.root_info.pin_is_internal[1]);
}

TEST(Fig8ReplicationTree, AppliedEmbeddingStaysEquivalent) {
  Fig8Circuit fig;
  Netlist golden = fig.nl;
  EngineOptions opt;
  opt.max_iterations = 10;
  run_replication_engine(fig.nl, *fig.pl, fig.dm, opt);
  EXPECT_TRUE(fig.nl.validate().empty()) << fig.nl.validate();
  EXPECT_TRUE(functionally_equivalent(golden, fig.nl, 64, 88));
}

// ---------------------------------------------------------------------------
// Fig. 9: eps-SPT membership.

TEST(Fig9EpsSpt, FastSideBranchesExcluded) {
  // m is the critical sink; j and g have fast paths into the cone and must
  // stay outside the eps-SPT for small eps (they are the paper's dashed
  // nodes).
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId j = nl.add_input_pad("j");
  CellId e = nl.add_logic("e", {nl.cell(a).output}, 0b10, false);
  CellId g = nl.add_logic("g", {nl.cell(j).output}, 0b10, false);
  CellId k = nl.add_logic("k", {nl.cell(e).output, nl.cell(g).output}, 0b0110,
                          false);
  CellId m = nl.add_output_pad("m");
  nl.connect(nl.cell(k).output, m, 0);

  FpgaGrid grid(8, 2);
  Placement pl(nl, grid);
  pl.place(a, {0, 4});
  pl.place(e, {4, 8});  // slow branch: detoured
  pl.place(j, {7, 4});
  pl.place(g, {7, 5});  // fast branch: right next to k
  pl.place(k, {8, 4});
  pl.place(m, {9, 4});
  LinearDelayModel dm;
  TimingGraph tg(nl, pl, dm);

  Spt tight = extract_eps_spt(tg, tg.sink_node(m), 0.0);
  EXPECT_TRUE(tight.contains(tg.out_node(e)));
  EXPECT_FALSE(tight.contains(tg.out_node(g)));
  EXPECT_FALSE(tight.contains(tg.out_node(j)));

  Spt wide = extract_eps_spt(tg, tg.sink_node(m), 1000.0);
  EXPECT_TRUE(wide.contains(tg.out_node(g)));
  EXPECT_TRUE(wide.contains(tg.out_node(j)));
}

// ---------------------------------------------------------------------------
// Fig. 13: unification after relocation.

TEST(Fig13Unification, RelocatedCellMergesWithReplica) {
  // Cell x and its replica x$r1 both alive; x relocated next to the replica;
  // unification reassigns fanouts and deletes the redundant copy.
  Netlist nl;
  CellId pi = nl.add_input_pad("pi");
  CellId x = nl.add_logic("x", {nl.cell(pi).output}, 0b10, false);
  CellId u1 = nl.add_logic("u1", {nl.cell(x).output}, 0b10, false);
  CellId u2 = nl.add_logic("u2", {nl.cell(x).output}, 0b10, false);
  CellId po1 = nl.add_output_pad("po1");
  CellId po2 = nl.add_output_pad("po2");
  nl.connect(nl.cell(u1).output, po1, 0);
  nl.connect(nl.cell(u2).output, po2, 0);
  Netlist golden = nl;

  CellId rep = nl.replicate_cell(x);
  nl.reassign_input(u2, 0, nl.cell(rep).output);

  FpgaGrid grid(6, 2);
  Placement pl(nl, grid);
  pl.place(pi, {0, 3});
  pl.place(x, {2, 3});    // "relocated to the proximity of a^R"
  pl.place(rep, {2, 4});
  pl.place(u1, {3, 3});
  pl.place(u2, {3, 4});
  pl.place(po1, {7, 3});
  pl.place(po2, {7, 4});

  LinearDelayModel dm;
  UnificationStats s = postprocess_unification(nl, pl, dm, /*aggressive=*/true);
  EXPECT_GE(s.fanouts_moved, 1);
  EXPECT_EQ(s.cells_deleted, 1);
  EXPECT_EQ(nl.cell_alive(x) + nl.cell_alive(rep), 1);  // exactly one remains
  EXPECT_TRUE(functionally_equivalent(golden, nl, 32, 13));
}

}  // namespace
}  // namespace repro
