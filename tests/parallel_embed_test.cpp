// Parallel speculative embedding (docs/ALGORITHMS.md §11).
//
// The hard guarantee under test: the optimization trajectory is BIT-IDENTICAL
// for every thread count. num_threads=1 must reproduce the pre-PR serial
// engine exactly (hard-coded hexfloat goldens below were captured from the
// serial engine before the thread pool existed), and any other thread count
// must reproduce the num_threads=1 run — speculation only prefetches the
// embeddings the serial schedule was going to compute anyway.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "embed/embedder.h"
#include "embed/embedding_graph.h"
#include "embed/fanin_tree.h"
#include "gen/circuit_gen.h"
#include "netlist/sim.h"
#include "place/annealer.h"
#include "replicate/engine.h"
#include "timing/timing_graph.h"
#include "util/thread_pool.h"

namespace repro {
namespace {

// ---- thread pool unit tests -------------------------------------------------

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  EXPECT_EQ(pool.num_workers(), 3u);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 32; ++i) futs.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 0u);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(hits.size(), 7,
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
  }
}

TEST(ThreadPool, ParallelForInsidePoolTaskDoesNotDeadlock) {
  // The embedder's join parallel_for can run inside a speculation task; the
  // caller participates in its own chunk loop, so this must complete even
  // when every worker is busy.
  ThreadPool pool(2);
  std::vector<std::future<long>> futs;
  for (int t = 0; t < 4; ++t) {
    futs.push_back(pool.submit([&pool] {
      std::atomic<long> sum{0};
      pool.parallel_for(100, 3, [&](std::size_t i) {
        sum.fetch_add(static_cast<long>(i));
      });
      return sum.load();
    }));
  }
  for (auto& f : futs) EXPECT_EQ(f.get(), 100L * 99 / 2);
}

// ---- embedder DP-level parallelism ------------------------------------------

/// A reconvergent 7-node tree over a 12x12 grid, with a placement cost that
/// varies per vertex so the tradeoff curve is nontrivial.
struct DpFixture {
  EmbeddingGraph graph =
      EmbeddingGraph::make_grid(Rect{0, 0, 11, 11}, 1.0, 1.0);
  FaninTree tree;

  DpFixture() {
    TreeNodeId a = tree.add_leaf("a", {0, 0}, 0.3, true);
    TreeNodeId b = tree.add_leaf("b", {11, 0}, 0.1, true);
    TreeNodeId c = tree.add_leaf("c", {0, 11}, 0.2, true);
    TreeNodeId d = tree.add_leaf("d", {5, 5}, 0.0, false);
    TreeNodeId g1 = tree.add_gate("g1", {a, b}, 1.0);
    TreeNodeId g2 = tree.add_gate("g2", {c, d}, 1.0);
    TreeNodeId g3 = tree.add_gate("g3", {g1, g2, d}, 1.0);
    tree.set_root(g3, {11, 11});
  }

  static double pcost(const EmbeddingGraph& g, TreeNodeId i, EmbedVertexId j) {
    Point p = g.point(j);
    return 0.25 * ((p.x * 7 + p.y * 13 + i.index() * 3) % 11);
  }
};

TEST(ParallelEmbedder, JoinColumnsBitIdenticalForAnyPoolSize) {
  DpFixture fx;
  auto pc = [&](TreeNodeId i, EmbedVertexId j) {
    return DpFixture::pcost(fx.graph, i, j);
  };

  EmbedOptions serial;
  serial.lex_order = 3;
  FaninTreeEmbedder se(fx.tree, fx.graph, pc, serial);
  ASSERT_TRUE(se.run());

  for (unsigned threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EmbedOptions par = serial;
    par.pool = &pool;
    par.parallel_min_vertices = 1;  // force the chunked path on this grid
    FaninTreeEmbedder pe(fx.tree, fx.graph, pc, par);
    ASSERT_TRUE(pe.run());

    ASSERT_EQ(se.tradeoff().size(), pe.tradeoff().size()) << threads;
    for (std::size_t k = 0; k < se.tradeoff().size(); ++k) {
      const RootSolution& x = se.tradeoff()[k];
      const RootSolution& y = pe.tradeoff()[k];
      EXPECT_EQ(x.vertex, y.vertex);
      EXPECT_EQ(x.label_index, y.label_index);  // same table layout, not just
                                                // same values
      EXPECT_EQ(x.cost, y.cost);                // bitwise
      EXPECT_EQ(x.delay.lex_compare(y.delay), 0);
    }
    EXPECT_EQ(se.labels_created(), pe.labels_created());
    // Extraction walks provenance (including rebased spill indices).
    auto es = se.extract(0);
    auto ep = pe.extract(0);
    ASSERT_EQ(es.size(), ep.size());
    EXPECT_TRUE(es == ep);
  }
}

TEST(ParallelEmbedder, ScratchReuseAcrossRunsIsClean) {
  DpFixture fx;
  auto pc = [&](TreeNodeId i, EmbedVertexId j) {
    return DpFixture::pcost(fx.graph, i, j);
  };
  EmbedOptions eo;
  eo.lex_order = 2;
  EmbedScratch scratch;
  std::vector<double> first;
  for (int round = 0; round < 3; ++round) {
    FaninTreeEmbedder e(fx.tree, fx.graph, pc, eo, &scratch);
    ASSERT_TRUE(e.run());
    std::vector<double> costs;
    for (const RootSolution& rs : e.tradeoff()) costs.push_back(rs.cost);
    if (round == 0)
      first = costs;
    else
      EXPECT_EQ(costs, first) << "round " << round;
  }
}

// ---- engine trajectory determinism ------------------------------------------

struct ParallelHarness {
  Netlist nl;
  FpgaGrid grid;
  LinearDelayModel dm;  // must precede pl: the annealer reads it
  Placement pl;
  Netlist golden;

  static Netlist make(std::uint64_t seed) {
    CircuitSpec spec;
    spec.num_logic = 120;
    spec.num_inputs = 10;
    spec.num_outputs = 10;
    spec.registered_fraction = 0.25;
    spec.depth = 8;
    spec.seed = seed;
    return generate_circuit(spec);
  }

  explicit ParallelHarness(std::uint64_t seed, int slack = 12)
      : nl(make(seed)),
        grid(FpgaGrid::min_grid_for(nl.num_logic() + slack,
                                    nl.num_input_pads() + nl.num_output_pads())),
        pl([&] {
          AnnealerOptions opt;
          opt.inner_num = 0.5;
          opt.seed = seed;
          return anneal_placement(nl, grid, dm, opt);
        }()),
        golden(nl) {}
};

EngineResult run_at(ParallelHarness& h, int threads, int max_iterations = 40) {
  EngineOptions opt;
  opt.variant = EmbedVariant::kLex3;
  opt.max_iterations = max_iterations;
  opt.num_threads = threads;
  return run_replication_engine(h.nl, h.pl, h.dm, opt);
}

void expect_identical_runs(const ParallelHarness& a, const EngineResult& ra,
                           const ParallelHarness& b, const EngineResult& rb,
                           const char* what) {
  SCOPED_TRACE(what);
  // Scalar results, bitwise.
  EXPECT_EQ(ra.final_critical, rb.final_critical);
  EXPECT_EQ(ra.final_wirelength, rb.final_wirelength);
  EXPECT_EQ(ra.final_blocks, rb.final_blocks);
  EXPECT_EQ(ra.total_replicated, rb.total_replicated);
  EXPECT_EQ(ra.total_unified, rb.total_unified);
  EXPECT_EQ(ra.ran_out_of_slots, rb.ran_out_of_slots);
  EXPECT_EQ(ra.reached_lower_bound, rb.reached_lower_bound);
  // Full per-iteration history: the engines walked the same trajectory, not
  // just arrived at the same endpoint.
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (std::size_t i = 0; i < ra.history.size(); ++i) {
    const IterationStats& x = ra.history[i];
    const IterationStats& y = rb.history[i];
    EXPECT_EQ(x.critical_delay, y.critical_delay) << "iter " << i;
    EXPECT_EQ(x.epsilon, y.epsilon) << "iter " << i;
    EXPECT_EQ(x.tree_internal, y.tree_internal) << "iter " << i;
    EXPECT_EQ(x.replicated_cum, y.replicated_cum) << "iter " << i;
    EXPECT_EQ(x.unified_cum, y.unified_cum) << "iter " << i;
    EXPECT_EQ(x.improved, y.improved) << "iter " << i;
    EXPECT_EQ(x.ff_relocation, y.ff_relocation) << "iter " << i;
  }
  // Final netlist/placement state.
  ASSERT_EQ(a.nl.num_live_cells(), b.nl.num_live_cells());
  for (CellId c : a.nl.live_cells()) {
    ASSERT_TRUE(b.nl.cell_alive(c));
    EXPECT_EQ(a.nl.cell(c).name, b.nl.cell(c).name);
    EXPECT_EQ(a.pl.location(c), b.pl.location(c));
  }
  // Same critical path node sequence.
  TimingGraph ta(a.nl, a.pl, a.dm);
  TimingGraph tb(b.nl, b.pl, b.dm);
  EXPECT_EQ(ta.critical_delay(), tb.critical_delay());
  EXPECT_EQ(ta.critical_path(), tb.critical_path());
}

TEST(ParallelEngine, SerialMatchesPrePrGoldens) {
  // Hexfloat trajectories captured from the serial engine BEFORE the thread
  // pool / speculation machinery existed (same toolchain and flags). Any
  // drift here means the refactor changed the serial algorithm.
  struct Golden {
    std::uint64_t seed;
    double final_critical;
    double final_wirelength;
    std::size_t final_blocks;
    std::size_t iters;
    int replicated;
    int unified;
  };
  const Golden goldens[] = {
      {21, 0x1.7666666666666p+5, 0x1.11eec710cb296p+10, 150, 40, 13, 3},
      {22, 0x1.2e66666666666p+5, 0x1.efb03e425aee7p+9, 145, 40, 13, 8},
      {23, 0x1.d666666666666p+5, 0x1.e4436113404e8p+9, 146, 40, 11, 5},
  };
  for (const Golden& g : goldens) {
    SCOPED_TRACE(g.seed);
    ParallelHarness h(g.seed);
    EngineResult r = run_at(h, /*threads=*/1);
    EXPECT_EQ(r.final_critical, g.final_critical);
    EXPECT_EQ(r.final_wirelength, g.final_wirelength);
    EXPECT_EQ(r.final_blocks, g.final_blocks);
    EXPECT_EQ(r.history.size(), g.iters);
    EXPECT_EQ(r.total_replicated, g.replicated);
    EXPECT_EQ(r.total_unified, g.unified);
    EXPECT_EQ(r.num_threads_used, 1);
    EXPECT_EQ(r.speculations_launched, 0u);  // no workers, no speculation
  }
}

TEST(ParallelEngine, TrajectoryIdenticalAcrossThreadCounts) {
  ParallelHarness base(22);
  EngineResult rbase = run_at(base, /*threads=*/1);
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE(threads);
    ParallelHarness h(22);
    EngineResult r = run_at(h, threads);
    expect_identical_runs(base, rbase, h, r, "threads vs serial");
    EXPECT_EQ(r.num_threads_used, threads);
    // Speculation must actually engage (hits are iterations served from the
    // prefetch cache) — otherwise this test exercises nothing.
    EXPECT_GT(r.speculations_launched, 0u);
    EXPECT_GT(r.speculation_hits, 0u);
    // Function and legality preserved under concurrency.
    EXPECT_TRUE(h.pl.legal()) << h.pl.check_legal();
    EXPECT_TRUE(h.nl.validate().empty()) << h.nl.validate();
    EXPECT_TRUE(functionally_equivalent(h.golden, h.nl, 64, 1234));
  }
}

TEST(ParallelEngine, RollbackUnderSpeculationLeavesStateUntouched) {
  // Dense fixture: almost no spare slots, so legalization fails and the
  // engine exercises the rollback path (which must keep — not invalidate —
  // the speculation cache, and must restore bit-exact state). The serial
  // run is the oracle.
  ParallelHarness base(31, /*slack=*/0);
  EngineResult rbase = run_at(base, /*threads=*/1, /*max_iterations=*/30);
  for (int threads : {4}) {
    SCOPED_TRACE(threads);
    ParallelHarness h(31, /*slack=*/0);
    EngineResult r = run_at(h, threads, /*max_iterations=*/30);
    expect_identical_runs(base, rbase, h, r, "dense fixture");
    EXPECT_TRUE(h.pl.legal()) << h.pl.check_legal();
    EXPECT_TRUE(functionally_equivalent(h.golden, h.nl, 64, 99));
  }
}

}  // namespace
}  // namespace repro
