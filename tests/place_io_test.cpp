#include <gtest/gtest.h>

#include <sstream>

#include "place/place_io.h"
#include "test_helpers.h"

namespace repro {
namespace {

using testing::TinyPlaced;

TEST(PlaceIo, RoundTrip) {
  TinyPlaced t;
  std::ostringstream out;
  write_placement(*t.pl, "tiny", out);

  Placement fresh(t.nl, *t.grid);
  std::istringstream in(out.str());
  read_placement(fresh, in);
  for (CellId c : t.nl.live_cells())
    EXPECT_EQ(fresh.location(c), t.pl->location(c)) << t.nl.cell(c).name;
  EXPECT_TRUE(fresh.legal()) << fresh.check_legal();
}

TEST(PlaceIo, HeaderAndCommentsIgnored) {
  TinyPlaced t;
  std::istringstream in(
      "Netlist file: x  Architecture: 4 x 4 (io_rat 2)\n"
      "# a comment line\n"
      "pi0 0 1 input\n"
      "pi1 0 3 input\n"
      "g1 1 1 logic\n"
      "g2 1 3 logic\n"
      "g3 2 2 logic\n"
      "r 3 2 logic\n"
      "po0 3 0 output\n"
      "po1 5 2 output\n");
  Placement fresh(t.nl, *t.grid);
  read_placement(fresh, in);
  EXPECT_EQ(fresh.location(t.g3), (Point{2, 2}));
}

TEST(PlaceIo, KindColumnOptional) {
  TinyPlaced t;
  std::istringstream in(
      "pi0 0 1\npi1 0 3\ng1 1 1\ng2 1 3\ng3 2 2\nr 3 2\npo0 3 0\npo1 5 2\n");
  Placement fresh(t.nl, *t.grid);
  read_placement(fresh, in);
  EXPECT_TRUE(fresh.legal()) << fresh.check_legal();
}

TEST(PlaceIo, UnknownCellRejected) {
  TinyPlaced t;
  std::istringstream in("nosuch 1 1 logic\n");
  Placement fresh(t.nl, *t.grid);
  EXPECT_THROW(read_placement(fresh, in), std::runtime_error);
}

TEST(PlaceIo, IncompatibleLocationRejected) {
  TinyPlaced t;
  std::istringstream in("g1 0 1 logic\n");  // logic cell on the I/O ring
  Placement fresh(t.nl, *t.grid);
  EXPECT_THROW(read_placement(fresh, in), std::runtime_error);
}

TEST(PlaceIo, MissingCellsRejected) {
  TinyPlaced t;
  std::istringstream in("g1 1 1 logic\n");
  Placement fresh(t.nl, *t.grid);
  EXPECT_THROW(read_placement(fresh, in), std::runtime_error);
}

TEST(PlaceIo, MalformedRowRejected) {
  TinyPlaced t;
  std::istringstream in("g1 1\n");
  Placement fresh(t.nl, *t.grid);
  EXPECT_THROW(read_placement(fresh, in), std::runtime_error);
}

}  // namespace
}  // namespace repro
