#include <gtest/gtest.h>

#include "gen/circuit_gen.h"
#include "place/placement.h"
#include "test_helpers.h"

namespace repro {
namespace {

using testing::TinyPlaced;

TEST(Placement, PlaceAndQuery) {
  TinyPlaced t;
  EXPECT_TRUE(t.pl->placed(t.g1));
  EXPECT_EQ(t.pl->location(t.g1), (Point{1, 1}));
  EXPECT_EQ(t.pl->occupancy({1, 1}), 1);
}

TEST(Placement, MoveUpdatesOccupancy) {
  TinyPlaced t;
  t.pl->place(t.g1, {2, 1});
  EXPECT_EQ(t.pl->occupancy({1, 1}), 0);
  EXPECT_EQ(t.pl->occupancy({2, 1}), 1);
  EXPECT_EQ(t.pl->location(t.g1), (Point{2, 1}));
}

TEST(Placement, Unplace) {
  TinyPlaced t;
  t.pl->unplace(t.g1);
  EXPECT_FALSE(t.pl->placed(t.g1));
  EXPECT_EQ(t.pl->occupancy({1, 1}), 0);
}

TEST(Placement, LegalInitially) {
  TinyPlaced t;
  EXPECT_TRUE(t.pl->legal()) << t.pl->check_legal();
}

TEST(Placement, OverlapDetected) {
  TinyPlaced t;
  t.pl->place(t.g1, {2, 2});  // on top of g3
  EXPECT_FALSE(t.pl->legal());
  auto over = t.pl->overfull_locations();
  ASSERT_EQ(over.size(), 1u);
  EXPECT_EQ(over[0], (Point{2, 2}));
  EXPECT_EQ(t.pl->overuse({2, 2}), 1);
}

TEST(Placement, IoCapacityTwo) {
  TinyPlaced t;
  // Two pads on one I/O location is legal with io_rat = 2.
  t.pl->place(t.po0, {5, 2});
  EXPECT_TRUE(t.pl->legal()) << t.pl->check_legal();
  EXPECT_EQ(t.pl->occupancy({5, 2}), 2);
}

TEST(Placement, IncompatibleLocationIllegal) {
  TinyPlaced t;
  t.pl->place(t.g1, {0, 2});  // logic cell on the I/O ring
  EXPECT_FALSE(t.pl->legal());
}

TEST(Placement, UnplacedCellIllegal) {
  TinyPlaced t;
  t.pl->unplace(t.g2);
  EXPECT_FALSE(t.pl->legal());
}

TEST(Placement, NetTerminalsDriverFirst) {
  TinyPlaced t;
  auto pts = t.pl->net_terminals(t.nl.cell(t.g3).output);
  ASSERT_EQ(pts.size(), 3u);  // driver g3 + sinks r, po0
  EXPECT_EQ(pts[0], (Point{2, 2}));
}

TEST(Placement, NetBboxAndWirelength) {
  TinyPlaced t;
  NetId n = t.nl.cell(t.g3).output;  // g3(2,2) -> r(3,2), po0(3,0)
  Rect bb = t.pl->net_bbox(n);
  EXPECT_EQ(bb.xmin, 2);
  EXPECT_EQ(bb.xmax, 3);
  EXPECT_EQ(bb.ymin, 0);
  EXPECT_EQ(bb.ymax, 2);
  EXPECT_DOUBLE_EQ(t.pl->net_wirelength(n), 3.0);  // hpwl 3, q(3)=1
}

TEST(Placement, TotalWirelengthPositive) {
  TinyPlaced t;
  EXPECT_GT(t.pl->total_wirelength(), 0.0);
}

TEST(Placement, FreeLogicLocations) {
  TinyPlaced t;
  auto free = t.pl->free_logic_locations();
  // 16 logic slots, 4 logic cells placed.
  EXPECT_EQ(free.size(), 12u);
}

TEST(Placement, GrowsForReplicas) {
  TinyPlaced t;
  CellId rep = t.nl.replicate_cell(t.g3);
  t.pl->place(rep, {1, 2});
  EXPECT_EQ(t.pl->location(rep), (Point{1, 2}));
  EXPECT_TRUE(t.pl->legal()) << t.pl->check_legal();
}

TEST(Placement, WithNetlistKeepsLocations) {
  TinyPlaced t;
  Netlist copy = t.nl;
  Placement pl2 = t.pl->with_netlist(copy);
  EXPECT_EQ(pl2.location(t.g3), t.pl->location(t.g3));
  EXPECT_TRUE(pl2.legal()) << pl2.check_legal();
  EXPECT_EQ(&pl2.netlist(), &copy);
}

TEST(Placement, CompatibleKinds) {
  TinyPlaced t;
  EXPECT_TRUE(t.pl->compatible(t.g1, {2, 2}));
  EXPECT_FALSE(t.pl->compatible(t.g1, {0, 2}));
  EXPECT_TRUE(t.pl->compatible(t.po0, {0, 2}));
  EXPECT_FALSE(t.pl->compatible(t.po0, {2, 2}));
}

}  // namespace
}  // namespace repro
