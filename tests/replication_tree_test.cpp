#include <gtest/gtest.h>

#include "replicate/replication_tree.h"
#include "test_helpers.h"
#include "timing/spt.h"
#include "timing/timing_graph.h"

namespace repro {
namespace {

using testing::TinyPlaced;

class ReplicationTreeFixture : public ::testing::Test {
 protected:
  TinyPlaced t;
  TimingGraph tg{t.nl, *t.pl, t.dm};
};

TEST_F(ReplicationTreeFixture, StructureForCriticalSink) {
  // Critical sink po0: eps-SPT with generous eps covers g3, g1, g2, pi0, pi1.
  Spt spt = extract_eps_spt(tg, tg.sink_node(t.po0), 5.0);
  ReplicationTree rt = build_replication_tree(tg, spt);

  // Internals: copies of g1, g2, g3 (the combinational members).
  EXPECT_EQ(rt.num_internal(), 3u);
  EXPECT_EQ(rt.root_info.cell, t.po0);
  // Root has one pin, fed by the internal copy of g3.
  ASSERT_EQ(rt.root_info.pin_child.size(), 1u);
  EXPECT_TRUE(rt.root_info.pin_is_internal[0]);
}

TEST_F(ReplicationTreeFixture, InternalsListedChildrenFirst) {
  Spt spt = extract_eps_spt(tg, tg.sink_node(t.po0), 5.0);
  ReplicationTree rt = build_replication_tree(tg, spt);
  // g3's info must come after g1's and g2's.
  int pos_g1 = -1, pos_g2 = -1, pos_g3 = -1;
  for (int i = 0; i < static_cast<int>(rt.internals.size()); ++i) {
    if (rt.internals[i].cell == t.g1) pos_g1 = i;
    if (rt.internals[i].cell == t.g2) pos_g2 = i;
    if (rt.internals[i].cell == t.g3) pos_g3 = i;
  }
  ASSERT_GE(pos_g1, 0);
  ASSERT_GE(pos_g2, 0);
  ASSERT_GE(pos_g3, 0);
  EXPECT_GT(pos_g3, pos_g1);
  EXPECT_GT(pos_g3, pos_g2);
}

TEST_F(ReplicationTreeFixture, LeavesCarryArrivalsAndKind) {
  Spt spt = extract_eps_spt(tg, tg.sink_node(t.po0), 5.0);
  ReplicationTree rt = build_replication_tree(tg, spt);
  int real_inputs = 0;
  for (TreeNodeId n : rt.tree.leaves()) {
    const FaninTreeNode& leaf = rt.tree.node(n);
    if (leaf.is_real_input) ++real_inputs;
    // All leaves are placed at their cells' locations.
    EXPECT_EQ(leaf.fixed_loc, t.pl->location(leaf.cell));
  }
  EXPECT_EQ(real_inputs, 2);  // pi0 and pi1
}

TEST_F(ReplicationTreeFixture, LeafArrivalMatchesSta) {
  Spt spt = extract_eps_spt(tg, tg.sink_node(t.po0), 5.0);
  ReplicationTree rt = build_replication_tree(tg, spt);
  for (TreeNodeId n : rt.tree.leaves()) {
    const FaninTreeNode& leaf = rt.tree.node(n);
    EXPECT_DOUBLE_EQ(leaf.leaf_arrival, tg.arrival(tg.out_node(leaf.cell)));
  }
}

TEST_F(ReplicationTreeFixture, GateDelaysMatchIntrinsics) {
  Spt spt = extract_eps_spt(tg, tg.sink_node(t.po0), 5.0);
  ReplicationTree rt = build_replication_tree(tg, spt);
  for (const auto& info : rt.internals) {
    EXPECT_DOUBLE_EQ(rt.tree.node(info.node).gate_delay, t.dm.logic_delay);
  }
  // Root is an output pad: pad delay.
  EXPECT_DOUBLE_EQ(rt.tree.node(rt.tree.root()).gate_delay, t.dm.io_delay);
}

TEST_F(ReplicationTreeFixture, ReconvergenceTerminatorForFlipFlopSink) {
  // The r.D sink: fanin cone is g3 (and up). With eps = 0 the tree rooted at
  // r.D contains g3; g3's fanins g1/g2 are either members or terminators.
  Spt spt = extract_eps_spt(tg, tg.sink_node(t.r), 0.0);
  ReplicationTree rt = build_replication_tree(tg, spt);
  EXPECT_EQ(rt.root_info.cell, t.r);
  EXPECT_GE(rt.num_internal(), 1u);
  // Functional invariant: pin counts of every internal match its cell.
  for (const auto& info : rt.internals) {
    EXPECT_EQ(info.pin_child.size(), t.nl.cell(info.cell).inputs.size());
    EXPECT_EQ(info.pin_is_internal.size(), t.nl.cell(info.cell).inputs.size());
  }
}

TEST_F(ReplicationTreeFixture, ExternalPinsBecomeTerminatorLeaves) {
  // Narrow tree: eps = 0 after skewing arrival so only the g1 branch is in
  // the SPT; g3's pin 1 (from g2) must then be an external leaf.
  t.pl->place(t.pi1, {0, 2});
  t.pl->place(t.g2, {1, 2});
  tg.run_sta();
  Spt spt = extract_eps_spt(tg, tg.sink_node(t.po0), 0.0);
  ASSERT_FALSE(spt.contains(tg.out_node(t.g2)));
  ReplicationTree rt = build_replication_tree(tg, spt);

  const ReplicationTree::InternalInfo* g3_info = nullptr;
  for (const auto& info : rt.internals)
    if (info.cell == t.g3) g3_info = &info;
  ASSERT_NE(g3_info, nullptr);
  EXPECT_TRUE(g3_info->pin_is_internal[0]);   // g1 branch in tree
  EXPECT_FALSE(g3_info->pin_is_internal[1]);  // g2 is a terminator leaf
  const FaninTreeNode& term = rt.tree.node(g3_info->pin_child[1]);
  EXPECT_TRUE(term.is_leaf());
  EXPECT_FALSE(term.is_real_input);
  EXPECT_EQ(term.cell, t.g2);
  EXPECT_DOUBLE_EQ(term.leaf_arrival, tg.arrival(tg.out_node(t.g2)));
}

TEST_F(ReplicationTreeFixture, TreePostOrderEndsAtRoot) {
  Spt spt = extract_eps_spt(tg, tg.sink_node(t.po0), 5.0);
  ReplicationTree rt = build_replication_tree(tg, spt);
  auto order = rt.tree.post_order();
  EXPECT_EQ(order.back(), rt.tree.root());
  EXPECT_EQ(order.size(), rt.tree.size());
}

}  // namespace
}  // namespace repro
