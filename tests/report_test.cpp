#include <gtest/gtest.h>

#include <sstream>

#include "test_helpers.h"
#include "timing/report.h"

namespace repro {
namespace {

using testing::TinyPlaced;

class ReportFixture : public ::testing::Test {
 protected:
  TinyPlaced t;
  TimingGraph tg{t.nl, *t.pl, t.dm};
};

TEST_F(ReportFixture, TopPathsOrderedBySlack) {
  auto paths = top_paths(tg, 3);
  ASSERT_EQ(paths.size(), 3u);  // po0, r.D, po1
  EXPECT_EQ(tg.node(paths[0].endpoint).cell, t.po0);
  EXPECT_NEAR(paths[0].slack, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(paths[0].arrival, 9.0);
  for (std::size_t i = 1; i < paths.size(); ++i)
    EXPECT_GE(paths[i].slack, paths[i - 1].slack - 1e-12);
}

TEST_F(ReportFixture, TopPathsRespectsK) {
  EXPECT_EQ(top_paths(tg, 1).size(), 1u);
  EXPECT_EQ(top_paths(tg, 100).size(), tg.sinks().size());
}

TEST_F(ReportFixture, PathNodesEndToEnd) {
  auto paths = top_paths(tg, 1);
  const auto& nodes = paths[0].nodes;
  ASSERT_GE(nodes.size(), 2u);
  EXPECT_EQ(tg.node(nodes.front()).kind, TimingNodeKind::kSource);
  EXPECT_EQ(nodes.back(), paths[0].endpoint);
}

TEST_F(ReportFixture, DetourRatioMatchesHelper) {
  auto paths = top_paths(tg, 1);
  // pi0(0,1) -> g1(1,1) -> g3(2,2) -> po0(3,0): 6 walked vs 4 direct.
  EXPECT_NEAR(paths[0].detour_ratio, 1.5, 1e-12);
}

TEST_F(ReportFixture, SlackHistogramCountsEveryEndpoint) {
  auto hist = slack_histogram(tg, 10);
  std::size_t total = 0;
  for (std::size_t h : hist) total += h;
  EXPECT_EQ(total, tg.sinks().size());
  // po0 has zero slack -> first bin populated.
  EXPECT_GE(hist[0], 1u);
  // po1 slack 6.25 of 9.0 -> bin 6 (69%).
  EXPECT_GE(hist[6], 1u);
}

TEST_F(ReportFixture, HistogramEdgeCases) {
  EXPECT_TRUE(slack_histogram(tg, 0).empty());
  auto one = slack_histogram(tg, 1);
  EXPECT_EQ(one[0], tg.sinks().size());
}

TEST_F(ReportFixture, TextReportMentionsKeyFacts) {
  std::string rep = timing_report(tg, 2);
  EXPECT_NE(rep.find("critical delay: 9"), std::string::npos);
  EXPECT_NE(rep.find("monotone lower bound"), std::string::npos);
  EXPECT_NE(rep.find("po0"), std::string::npos);
  EXPECT_NE(rep.find("slack histogram"), std::string::npos);
  EXPECT_NE(rep.find("wire"), std::string::npos);
}

}  // namespace
}  // namespace repro
