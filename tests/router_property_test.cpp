// Property tests of the PathFinder router over random placed circuits:
// capacity feasibility, monotonicity in channel width, conservation of
// connections, and the low-stress relationships the evaluation relies on.

#include <gtest/gtest.h>

#include "gen/circuit_gen.h"
#include "place/annealer.h"
#include "route/router.h"
#include "timing/timing_graph.h"

namespace repro {
namespace {

struct Rig {
  Netlist nl;
  FpgaGrid grid;
  LinearDelayModel dm;
  Placement pl;

  static Netlist make(std::uint64_t seed) {
    CircuitSpec spec;
    spec.num_logic = 90;
    spec.num_inputs = 8;
    spec.num_outputs = 8;
    spec.registered_fraction = 0.2;
    spec.depth = 6;
    spec.seed = seed;
    return generate_circuit(spec);
  }

  explicit Rig(std::uint64_t seed)
      : nl(make(seed)),
        grid(FpgaGrid::min_grid_for(nl.num_logic(),
                                    nl.num_input_pads() + nl.num_output_pads())),
        pl([&] {
          Rng rng(seed * 3 + 1);
          return random_placement(nl, grid, rng);
        }()) {}

  std::size_t num_connections() const {
    std::size_t n = 0;
    for (NetId net : nl.live_nets()) n += nl.net(net).sinks.size();
    return n;
  }
};

class RouterSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterSweep, EveryConnectionRouted) {
  Rig rig(GetParam());
  RoutingResult r = route(rig.nl, rig.pl, RouterOptions{});
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.connection_length.size(), rig.num_connections());
}

TEST_P(RouterSweep, LengthsAtLeastManhattan) {
  Rig rig(GetParam());
  RoutingResult r = route(rig.nl, rig.pl, RouterOptions{});
  for (NetId n : rig.nl.live_nets()) {
    Point d = rig.pl.location(rig.nl.net(n).driver);
    for (const Sink& s : rig.nl.net(n).sinks)
      EXPECT_GE(r.length_of(s.cell, s.pin, -1),
                manhattan(d, rig.pl.location(s.cell)));
  }
}

TEST_P(RouterSweep, CapacityRespectedAtWmin) {
  Rig rig(GetParam());
  int wmin = find_min_channel_width(rig.nl, rig.pl);
  RouterOptions opt;
  opt.channel_width = wmin;
  RoutingResult r = route(rig.nl, rig.pl, opt);
  ASSERT_TRUE(r.success);
  EXPECT_LE(r.max_channel_occupancy, wmin);
}

TEST_P(RouterSweep, SuccessMonotoneInWidth) {
  Rig rig(GetParam());
  int wmin = find_min_channel_width(rig.nl, rig.pl);
  for (int w : {wmin, wmin + 1, wmin + 3}) {
    RouterOptions opt;
    opt.channel_width = w;
    EXPECT_TRUE(route(rig.nl, rig.pl, opt).success) << "width " << w;
  }
}

TEST_P(RouterSweep, InfiniteWirelengthLowerBoundsConstrained) {
  // Shortest-path (infinite) routing uses no more wire than a capacity-
  // constrained routing that must detour.
  Rig rig(GetParam());
  RoutingResult inf = route(rig.nl, rig.pl, RouterOptions{});
  int wmin = find_min_channel_width(rig.nl, rig.pl);
  RouterOptions tight;
  tight.channel_width = wmin;
  RoutingResult con = route(rig.nl, rig.pl, tight);
  ASSERT_TRUE(con.success);
  EXPECT_LE(inf.total_wirelength, con.total_wirelength * 1.02 + 4);
}

TEST_P(RouterSweep, WminAgreesAcrossSearchModes) {
  // The fast path (A*, incremental rip-up, warm-started probes, stall abort)
  // must find the same minimum width as the conservative full search.
  Rig rig(GetParam());
  RouterOptions fast;  // defaults: all fast-path features on
  RouterOptions conservative;
  conservative.use_astar = false;
  conservative.incremental_reroute = false;
  conservative.warm_start_wmin = false;
  conservative.stall_abort_window = 0;
  EXPECT_EQ(find_min_channel_width(rig.nl, rig.pl, fast),
            find_min_channel_width(rig.nl, rig.pl, conservative));
}

TEST_P(RouterSweep, SelfCheckedRouteAtWmin) {
  // The occupancy-recomputation self-check must hold at the tightest width,
  // where the incremental rip-up bookkeeping is most stressed.
  Rig rig(GetParam());
  int wmin = find_min_channel_width(rig.nl, rig.pl);
  RouterOptions opt;
  opt.channel_width = wmin;
  opt.self_check = true;
  RoutingResult r = route(rig.nl, rig.pl, opt);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.connection_length.size(), rig.num_connections());
}

TEST_P(RouterSweep, CriticalityRoutingHelpsRoutedDelay) {
  Rig rig(GetParam());
  LinearDelayModel dm;
  TimingGraph tg(rig.nl, rig.pl, dm);
  auto crit_fn = [&tg](CellId sink, int pin) -> double {
    for (std::size_t e = 0; e < tg.num_edges(); ++e) {
      const TimingEdge& ed = tg.edge(e);
      if (tg.node(ed.to).cell == sink && ed.pin == pin)
        return tg.edge_criticality(e);
    }
    return 0.0;
  };
  RoutingResult plain = route(rig.nl, rig.pl, RouterOptions{});
  RoutingResult timed = route(rig.nl, rig.pl, RouterOptions{}, crit_fn);
  double d_plain = routed_critical_delay(rig.nl, rig.pl, dm, plain);
  double d_timed = routed_critical_delay(rig.nl, rig.pl, dm, timed);
  EXPECT_LE(d_timed, d_plain + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace repro
