#include <gtest/gtest.h>

#include "gen/circuit_gen.h"
#include "place/annealer.h"
#include "route/router.h"
#include "test_helpers.h"
#include "timing/timing_graph.h"
#include "util/rng.h"

namespace repro {
namespace {

using testing::TinyPlaced;

/// Medium generated circuit with a random placement: enough congestion for
/// the negotiation/W_min machinery to be exercised, small enough to stay
/// fast. Same fixture as the pinned goldens below.
struct SeededPlaced {
  Netlist nl;
  FpgaGrid grid;
  Placement pl;

  static Netlist make() {
    CircuitSpec spec;
    spec.num_logic = 60;
    spec.num_inputs = 8;
    spec.num_outputs = 8;
    spec.registered_fraction = 0.2;
    spec.depth = 6;
    spec.seed = 1;
    return generate_circuit(spec);
  }

  SeededPlaced()
      : nl(make()),
        grid(FpgaGrid::min_grid_for(nl.num_logic(),
                                    nl.num_input_pads() + nl.num_output_pads())),
        pl([&] {
          Rng rng(4);
          return random_placement(nl, grid, rng);
        }()) {}
};

TEST(Router, InfiniteResourcesRouteEverything) {
  TinyPlaced t;
  RouterOptions opt;
  opt.channel_width = 0;
  RoutingResult r = route(t.nl, *t.pl, opt);
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.total_wirelength, 0);
  EXPECT_GE(r.max_channel_occupancy, 1);
}

TEST(Router, ConnectionLengthsAtLeastManhattan) {
  TinyPlaced t;
  RouterOptions opt;
  RoutingResult r = route(t.nl, *t.pl, opt);
  for (NetId n : t.nl.live_nets()) {
    const Net& net = t.nl.net(n);
    Point d = t.pl->location(net.driver);
    for (const Sink& s : net.sinks) {
      int len = r.length_of(s.cell, s.pin, -1);
      ASSERT_GE(len, 0) << "connection missing from routing";
      EXPECT_GE(len, manhattan(d, t.pl->location(s.cell)));
    }
  }
}

TEST(Router, InfiniteRoutingIsShortestPath) {
  // With no congestion every connection should match Manhattan distance
  // exactly when the net has a single sink.
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId g = nl.add_logic("g", {nl.cell(a).output}, 0b10, false);
  CellId po = nl.add_output_pad("po");
  nl.connect(nl.cell(g).output, po, 0);
  FpgaGrid grid(4, 2);
  Placement pl(nl, grid);
  pl.place(a, {0, 2});
  pl.place(g, {2, 3});
  pl.place(po, {5, 1});
  RoutingResult r = route(nl, pl, RouterOptions{});
  EXPECT_EQ(r.length_of(g, 0, -1), manhattan({0, 2}, {2, 3}));
  EXPECT_EQ(r.length_of(po, 0, -1), manhattan({2, 3}, {5, 1}));
}

TEST(Router, SteinerSharingShortensMultiFanout) {
  // Driver with two sinks on the same row: the shared trunk must be counted
  // once (wirelength < sum of the two Manhattan distances).
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId g1 = nl.add_logic("g1", {nl.cell(a).output}, 0b10, false);
  CellId g2 = nl.add_logic("g2", {nl.cell(a).output}, 0b10, false);
  CellId po1 = nl.add_output_pad("po1");
  CellId po2 = nl.add_output_pad("po2");
  nl.connect(nl.cell(g1).output, po1, 0);
  nl.connect(nl.cell(g2).output, po2, 0);
  FpgaGrid grid(6, 2);
  Placement pl(nl, grid);
  pl.place(a, {0, 1});
  pl.place(g1, {5, 1});
  pl.place(g2, {6, 1});
  pl.place(po1, {7, 1});
  pl.place(po2, {7, 2});
  RoutingResult r = route(nl, pl, RouterOptions{});
  // Net a: sinks at distance 5 and 6 along one line; shared tree uses 6.
  // Total wirelength must be below the unshared sum for this net.
  EXPECT_TRUE(r.success);
  EXPECT_LE(r.total_wirelength, 6 + 2 + 2);  // a-tree + two output hops
}

TEST(Router, CapacityOneForcesDetours) {
  // Two parallel nets through a narrow region with W=1: one must detour,
  // but routing must still succeed.
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId b = nl.add_input_pad("b");
  CellId ga = nl.add_logic("ga", {nl.cell(a).output}, 0b10, false);
  CellId gb = nl.add_logic("gb", {nl.cell(b).output}, 0b10, false);
  CellId poa = nl.add_output_pad("poa");
  CellId pob = nl.add_output_pad("pob");
  nl.connect(nl.cell(ga).output, poa, 0);
  nl.connect(nl.cell(gb).output, pob, 0);
  FpgaGrid grid(4, 2);
  Placement pl(nl, grid);
  pl.place(a, {0, 2});
  pl.place(b, {0, 2});  // same pad location (io_rat 2)
  pl.place(ga, {1, 2});
  pl.place(gb, {2, 2});
  pl.place(poa, {5, 2});
  pl.place(pob, {5, 2});
  RouterOptions opt;
  opt.channel_width = 1;
  RoutingResult r = route(nl, pl, opt);
  EXPECT_TRUE(r.success);
  EXPECT_LE(r.max_channel_occupancy, 1);
}

TEST(Router, MinChannelWidthMonotone) {
  TinyPlaced t;
  int wmin = find_min_channel_width(t.nl, *t.pl);
  ASSERT_GE(wmin, 1);
  // Routing at wmin succeeds; at wmin-1 it must fail (if wmin > 1).
  RouterOptions at;
  at.channel_width = wmin;
  EXPECT_TRUE(route(t.nl, *t.pl, at).success);
  if (wmin > 1) {
    RouterOptions below;
    below.channel_width = wmin - 1;
    EXPECT_FALSE(route(t.nl, *t.pl, below).success);
  }
}

TEST(Router, RoutedDelayAtLeastPlacedEstimate) {
  TinyPlaced t;
  TimingGraph tg(t.nl, *t.pl, t.dm);
  double placed = tg.critical_delay();
  RoutingResult inf = route(t.nl, *t.pl, RouterOptions{});
  double routed = routed_critical_delay(t.nl, *t.pl, t.dm, inf);
  EXPECT_GE(routed, placed - 1e-9);
}

TEST(Router, LowStressNoWorseStructure) {
  // W_ls >= W_inf critical path (congestion can only lengthen wires); both
  // on an annealed medium circuit — the Table I relationship.
  CircuitSpec spec;
  spec.num_logic = 120;
  spec.num_inputs = 10;
  spec.num_outputs = 10;
  spec.depth = 7;
  spec.seed = 5;
  Netlist nl = generate_circuit(spec);
  FpgaGrid grid(FpgaGrid::min_grid_for(nl.num_logic(),
                                       nl.num_input_pads() + nl.num_output_pads()));
  LinearDelayModel dm;
  AnnealerOptions aopt;
  aopt.inner_num = 0.5;
  Placement pl = anneal_placement(nl, grid, dm, aopt);

  RoutingResult inf = route(nl, pl, RouterOptions{});
  double crit_inf = routed_critical_delay(nl, pl, dm, inf);
  int wmin = find_min_channel_width(nl, pl);
  RouterOptions ls;
  ls.channel_width = static_cast<int>(std::ceil(1.2 * wmin));
  RoutingResult rls = route(nl, pl, ls);
  EXPECT_TRUE(rls.success);
  double crit_ls = routed_critical_delay(nl, pl, dm, rls);
  EXPECT_GE(crit_ls, crit_inf - 1e-9);
  EXPECT_LE(crit_ls, crit_inf * 1.5);  // low-stress, not pathological
}

TEST(Router, DeterministicAcrossRuns) {
  TinyPlaced t;
  RoutingResult a = route(t.nl, *t.pl, RouterOptions{});
  RoutingResult b = route(t.nl, *t.pl, RouterOptions{});
  EXPECT_EQ(a.total_wirelength, b.total_wirelength);
  EXPECT_EQ(a.connection_length, b.connection_length);
}

TEST(Router, DeterministicInBothRerouteModes) {
  // Same inputs -> bit-identical results, in incremental and full-reroute
  // mode, including the per-pass work counters.
  SeededPlaced s;
  for (bool incremental : {true, false}) {
    RouterOptions opt;
    opt.incremental_reroute = incremental;
    opt.channel_width = 8;  // congested enough for multiple passes
    RoutingResult a = route(s.nl, s.pl, opt);
    RoutingResult b = route(s.nl, s.pl, opt);
    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(a.total_wirelength, b.total_wirelength);
    EXPECT_EQ(a.connection_length, b.connection_length);
    EXPECT_EQ(a.pass_stats, b.pass_stats);
    EXPECT_EQ(a.nodes_expanded, b.nodes_expanded);
  }
}

TEST(Router, AStarMatchesDijkstraOracle) {
  // The lookahead is admissible and consistent, so every A* maze search must
  // find the same path cost as a reference Dijkstra — uncongested,
  // congested, and with timing-driven criticalities.
  SeededPlaced s;
  RouterOptions opt;
  opt.verify_lookahead = true;

  opt.channel_width = 0;
  RoutingResult inf = route(s.nl, s.pl, opt);
  EXPECT_TRUE(inf.success);
  EXPECT_EQ(inf.lookahead_mismatches, 0u);

  opt.channel_width = 8;
  RoutingResult tight = route(s.nl, s.pl, opt);
  EXPECT_EQ(tight.lookahead_mismatches, 0u);

  auto crit = [](CellId cell, int pin) {
    return ((cell.index() * 7 + static_cast<std::size_t>(pin)) % 10) / 10.0;
  };
  RoutingResult crit_routed = route(s.nl, s.pl, opt, crit);
  EXPECT_EQ(crit_routed.lookahead_mismatches, 0u);
  EXPECT_GT(crit_routed.nodes_expanded, 0u);
}

TEST(Router, IncrementalMatchesFullRerouteWmin) {
  SeededPlaced s;
  RouterOptions incr;
  incr.incremental_reroute = true;
  RouterOptions full;
  full.incremental_reroute = false;
  EXPECT_EQ(find_min_channel_width(s.nl, s.pl, incr),
            find_min_channel_width(s.nl, s.pl, full));
}

TEST(Router, WarmWminMatchesColdAndReportsStats) {
  SeededPlaced s;
  RouterOptions warm;
  warm.warm_start_wmin = true;
  RouterOptions cold;
  cold.warm_start_wmin = false;
  WminSearchStats ws, cs;
  const int w_warm = find_min_channel_width(s.nl, s.pl, warm, &ws);
  const int w_cold = find_min_channel_width(s.nl, s.pl, cold, &cs);
  EXPECT_EQ(w_warm, w_cold);

  for (const WminSearchStats* st : {&ws, &cs}) {
    EXPECT_LE(st->lower_bound, st->wmin);
    EXPECT_LE(st->wmin, st->upper_bound);
    ASSERT_FALSE(st->probes.empty());
    EXPECT_EQ(st->probes.front().width, 0);  // infinite-resource seeding run
    bool wmin_probed_ok = false;
    for (const WminProbeStats& p : st->probes)
      wmin_probed_ok |= p.width == st->wmin && p.success;
    EXPECT_TRUE(wmin_probed_ok);
    EXPECT_GT(st->nodes_expanded, 0u);
    EXPECT_GE(st->heap_pushes, st->heap_pops);
  }
  // The warm search ends with the cold verification of the returned width.
  EXPECT_TRUE(ws.probes.back().success);
  EXPECT_EQ(ws.probes.back().width, ws.wmin);
  EXPECT_FALSE(ws.probes.back().warm);
  // Warm probes actually reuse the persistent router.
  bool any_warm = false;
  for (const WminProbeStats& p : ws.probes) any_warm |= p.warm;
  EXPECT_TRUE(any_warm);
  // The warm search's answer is always reproducible by a cold route().
  RouterOptions at = warm;
  at.channel_width = w_warm;
  at.self_check = true;
  EXPECT_TRUE(route(s.nl, s.pl, at).success);
}

TEST(Router, PinnedGoldensSmallSeedCircuit) {
  // Pinned quality numbers for the seeded fixture. A change here means the
  // router's routed quality moved: verify W_min and wirelength did not
  // regress before re-pinning.
  SeededPlaced s;
  EXPECT_EQ(find_min_channel_width(s.nl, s.pl), 7);

  RoutingResult inf = route(s.nl, s.pl, RouterOptions{});
  EXPECT_TRUE(inf.success);
  EXPECT_EQ(inf.total_wirelength, 717);

  RouterOptions at;
  at.channel_width = 7;
  at.self_check = true;
  RoutingResult r = route(s.nl, s.pl, at);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.total_wirelength, 784);
  EXPECT_EQ(r.connection_length.size(), 196u);
}

TEST(Router, BoundedSearchReportsUnroutedConnections) {
  // A connection that exhausts its expansion budget must be recorded as
  // unrouted — success false, counted — never silently dropped (the release
  // -mode failure mode this replaces was an assert that compiled out).
  SeededPlaced s;
  RouterOptions opt;
  opt.max_expansions_per_connection = 1;
  opt.max_iterations = 2;
  opt.self_check = true;
  RoutingResult r = route(s.nl, s.pl, opt);
  EXPECT_FALSE(r.success);
  EXPECT_GT(r.unrouted_connections, 0);
  ASSERT_FALSE(r.pass_stats.empty());
  EXPECT_EQ(r.pass_stats.back().unrouted_connections, r.unrouted_connections);
}

TEST(Router, StallAbortOnlyDeclaresTrueFailures) {
  // The early stall abort must agree with the full 30-pass negotiation on
  // both sides of W_min.
  SeededPlaced s;
  const int wmin = find_min_channel_width(s.nl, s.pl);
  for (int window : {0, 2}) {
    RouterOptions opt;
    opt.stall_abort_window = window;
    opt.channel_width = wmin;
    EXPECT_TRUE(route(s.nl, s.pl, opt).success) << "window " << window;
    opt.channel_width = wmin - 1;
    EXPECT_FALSE(route(s.nl, s.pl, opt).success) << "window " << window;
  }
}

}  // namespace
}  // namespace repro
