#include <gtest/gtest.h>

#include "gen/circuit_gen.h"
#include "place/annealer.h"
#include "route/router.h"
#include "test_helpers.h"
#include "timing/timing_graph.h"

namespace repro {
namespace {

using testing::TinyPlaced;

TEST(Router, InfiniteResourcesRouteEverything) {
  TinyPlaced t;
  RouterOptions opt;
  opt.channel_width = 0;
  RoutingResult r = route(t.nl, *t.pl, opt);
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.total_wirelength, 0);
  EXPECT_GE(r.max_channel_occupancy, 1);
}

TEST(Router, ConnectionLengthsAtLeastManhattan) {
  TinyPlaced t;
  RouterOptions opt;
  RoutingResult r = route(t.nl, *t.pl, opt);
  for (NetId n : t.nl.live_nets()) {
    const Net& net = t.nl.net(n);
    Point d = t.pl->location(net.driver);
    for (const Sink& s : net.sinks) {
      int len = r.length_of(s.cell, s.pin, -1);
      ASSERT_GE(len, 0) << "connection missing from routing";
      EXPECT_GE(len, manhattan(d, t.pl->location(s.cell)));
    }
  }
}

TEST(Router, InfiniteRoutingIsShortestPath) {
  // With no congestion every connection should match Manhattan distance
  // exactly when the net has a single sink.
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId g = nl.add_logic("g", {nl.cell(a).output}, 0b10, false);
  CellId po = nl.add_output_pad("po");
  nl.connect(nl.cell(g).output, po, 0);
  FpgaGrid grid(4, 2);
  Placement pl(nl, grid);
  pl.place(a, {0, 2});
  pl.place(g, {2, 3});
  pl.place(po, {5, 1});
  RoutingResult r = route(nl, pl, RouterOptions{});
  EXPECT_EQ(r.length_of(g, 0, -1), manhattan({0, 2}, {2, 3}));
  EXPECT_EQ(r.length_of(po, 0, -1), manhattan({2, 3}, {5, 1}));
}

TEST(Router, SteinerSharingShortensMultiFanout) {
  // Driver with two sinks on the same row: the shared trunk must be counted
  // once (wirelength < sum of the two Manhattan distances).
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId g1 = nl.add_logic("g1", {nl.cell(a).output}, 0b10, false);
  CellId g2 = nl.add_logic("g2", {nl.cell(a).output}, 0b10, false);
  CellId po1 = nl.add_output_pad("po1");
  CellId po2 = nl.add_output_pad("po2");
  nl.connect(nl.cell(g1).output, po1, 0);
  nl.connect(nl.cell(g2).output, po2, 0);
  FpgaGrid grid(6, 2);
  Placement pl(nl, grid);
  pl.place(a, {0, 1});
  pl.place(g1, {5, 1});
  pl.place(g2, {6, 1});
  pl.place(po1, {7, 1});
  pl.place(po2, {7, 2});
  RoutingResult r = route(nl, pl, RouterOptions{});
  // Net a: sinks at distance 5 and 6 along one line; shared tree uses 6.
  // Total wirelength must be below the unshared sum for this net.
  EXPECT_TRUE(r.success);
  EXPECT_LE(r.total_wirelength, 6 + 2 + 2);  // a-tree + two output hops
}

TEST(Router, CapacityOneForcesDetours) {
  // Two parallel nets through a narrow region with W=1: one must detour,
  // but routing must still succeed.
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId b = nl.add_input_pad("b");
  CellId ga = nl.add_logic("ga", {nl.cell(a).output}, 0b10, false);
  CellId gb = nl.add_logic("gb", {nl.cell(b).output}, 0b10, false);
  CellId poa = nl.add_output_pad("poa");
  CellId pob = nl.add_output_pad("pob");
  nl.connect(nl.cell(ga).output, poa, 0);
  nl.connect(nl.cell(gb).output, pob, 0);
  FpgaGrid grid(4, 2);
  Placement pl(nl, grid);
  pl.place(a, {0, 2});
  pl.place(b, {0, 2});  // same pad location (io_rat 2)
  pl.place(ga, {1, 2});
  pl.place(gb, {2, 2});
  pl.place(poa, {5, 2});
  pl.place(pob, {5, 2});
  RouterOptions opt;
  opt.channel_width = 1;
  RoutingResult r = route(nl, pl, opt);
  EXPECT_TRUE(r.success);
  EXPECT_LE(r.max_channel_occupancy, 1);
}

TEST(Router, MinChannelWidthMonotone) {
  TinyPlaced t;
  int wmin = find_min_channel_width(t.nl, *t.pl);
  ASSERT_GE(wmin, 1);
  // Routing at wmin succeeds; at wmin-1 it must fail (if wmin > 1).
  RouterOptions at;
  at.channel_width = wmin;
  EXPECT_TRUE(route(t.nl, *t.pl, at).success);
  if (wmin > 1) {
    RouterOptions below;
    below.channel_width = wmin - 1;
    EXPECT_FALSE(route(t.nl, *t.pl, below).success);
  }
}

TEST(Router, RoutedDelayAtLeastPlacedEstimate) {
  TinyPlaced t;
  TimingGraph tg(t.nl, *t.pl, t.dm);
  double placed = tg.critical_delay();
  RoutingResult inf = route(t.nl, *t.pl, RouterOptions{});
  double routed = routed_critical_delay(t.nl, *t.pl, t.dm, inf);
  EXPECT_GE(routed, placed - 1e-9);
}

TEST(Router, LowStressNoWorseStructure) {
  // W_ls >= W_inf critical path (congestion can only lengthen wires); both
  // on an annealed medium circuit — the Table I relationship.
  CircuitSpec spec;
  spec.num_logic = 120;
  spec.num_inputs = 10;
  spec.num_outputs = 10;
  spec.depth = 7;
  spec.seed = 5;
  Netlist nl = generate_circuit(spec);
  FpgaGrid grid(FpgaGrid::min_grid_for(nl.num_logic(),
                                       nl.num_input_pads() + nl.num_output_pads()));
  LinearDelayModel dm;
  AnnealerOptions aopt;
  aopt.inner_num = 0.5;
  Placement pl = anneal_placement(nl, grid, dm, aopt);

  RoutingResult inf = route(nl, pl, RouterOptions{});
  double crit_inf = routed_critical_delay(nl, pl, dm, inf);
  int wmin = find_min_channel_width(nl, pl);
  RouterOptions ls;
  ls.channel_width = static_cast<int>(std::ceil(1.2 * wmin));
  RoutingResult rls = route(nl, pl, ls);
  EXPECT_TRUE(rls.success);
  double crit_ls = routed_critical_delay(nl, pl, dm, rls);
  EXPECT_GE(crit_ls, crit_inf - 1e-9);
  EXPECT_LE(crit_ls, crit_inf * 1.5);  // low-stress, not pathological
}

TEST(Router, DeterministicAcrossRuns) {
  TinyPlaced t;
  RoutingResult a = route(t.nl, *t.pl, RouterOptions{});
  RoutingResult b = route(t.nl, *t.pl, RouterOptions{});
  EXPECT_EQ(a.total_wirelength, b.total_wirelength);
  EXPECT_EQ(a.connection_length, b.connection_length);
}

}  // namespace
}  // namespace repro
