// Satellite of the million-cell scale pass: pins the arena data-layout
// refactor (DESIGN.md §9) to pre-refactor golden trajectories, byte for
// byte, and checks the generator's determinism and structure at >= 1e5
// cells.
//
// The golden constants below were captured from the UNMODIFIED pre-refactor
// build (map-based SPT/monotone/sim, recompute-on-touch annealer, vector
// erase PO pool in the generator) with exactly the options used here. Every
// arena/flat path must keep reproducing them. If a deliberate algorithm
// change invalidates them, re-capture from a build of the previous commit —
// never from the build under test.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "arch/delay_model.h"
#include "arch/fpga_grid.h"
#include "gen/circuit_gen.h"
#include "netlist/netlist.h"
#include "place/annealer.h"
#include "place/placement.h"
#include "replicate/engine.h"
#include "timing/monotone.h"
#include "timing/spt.h"
#include "timing/timing_graph.h"

namespace repro {
namespace {

// ---- FNV-1a 64 fingerprints (must match the capture driver bit for bit) --

struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  }
  void mix_d(double d) {
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(d));
    __builtin_memcpy(&b, &d, 8);
    mix(b);
  }
};

std::uint64_t netlist_fingerprint(const Netlist& nl) {
  Fnv f;
  for (CellId c : nl.live_cell_ids()) {
    const Cell& cell = nl.cell(c);
    f.mix(static_cast<std::uint64_t>(cell.kind));
    f.mix(cell.function);
    f.mix(cell.registered ? 1 : 0);
    f.mix(cell.output.valid() ? cell.output.value() : -7);
    for (NetId n : cell.inputs) f.mix(n.valid() ? n.value() : -7);
  }
  for (NetId n : nl.live_net_ids()) {
    const Net& net = nl.net(n);
    f.mix(net.driver.value());
    for (const Sink& s : net.sinks) {
      f.mix(s.cell.value());
      f.mix(s.pin);
    }
  }
  return f.h;
}

std::uint64_t placement_fingerprint(const Netlist& nl, const Placement& pl) {
  Fnv f;
  for (CellId c : nl.live_cell_ids()) {
    Point p = pl.location(c);
    f.mix(p.x);
    f.mix(p.y);
  }
  return f.h;
}

std::uint64_t history_fingerprint(const EngineResult& r) {
  Fnv f;
  for (const IterationStats& it : r.history) {
    f.mix(it.iteration);
    f.mix_d(it.critical_delay);
    f.mix_d(it.epsilon);
    f.mix(it.tree_internal);
    f.mix(it.replicated_cum);
    f.mix(it.unified_cum);
    f.mix(it.improved ? 1 : 0);
    f.mix(it.ff_relocation ? 1 : 0);
  }
  return f.h;
}

// ---- shared fixtures -----------------------------------------------------

const McncCircuit& suite_entry(const char* name) {
  for (const McncCircuit& c : mcnc_suite())
    if (std::string(c.name) == name) return c;
  ADD_FAILURE() << "no suite entry " << name;
  return mcnc_suite().front();
}

struct Placed {
  Netlist nl;
  FpgaGrid grid;
  LinearDelayModel dm;
  Placement pl;

  Placed(const char* circuit, double scale, const AnnealerOptions& aopt)
      : nl(generate_circuit(spec_for(suite_entry(circuit), scale, 7))),
        grid(FpgaGrid::min_grid_for(nl.num_logic(),
                                    nl.num_input_pads() + nl.num_output_pads())),
        pl(anneal_placement(nl, grid, dm, aopt)) {}
};

AnnealerOptions golden_annealer_options() {
  AnnealerOptions aopt;
  aopt.seed = 7 * 977 + 13;
  return aopt;
}

// ---- pinned pre-refactor goldens -----------------------------------------

struct Golden {
  const char* circuit;
  std::uint64_t gen_fp;
  std::size_t cells;
  std::uint64_t place_fp;
  double total_wl;
  double final_crit;
  double final_wl;
  int replicated;
  int unified;
  std::size_t history;
  std::uint64_t hist_fp;
  std::uint64_t post_nl_fp;
  std::uint64_t post_pl_fp;
};

constexpr Golden kGoldens[] = {
    {"ex5p", 9007716736109602111ull, 105, 6640744256810646108ull,
     529.74430000000007, 25.100000000000001, 622.21559999999999, 30, 21, 49,
     6502635797490821597ull, 4894285030289752247ull, 18292034932375158894ull},
    {"s298", 6262762595882575935ull, 158, 13632590844890047540ull,
     1253.6798999999999, 38.799999999999997, 1484.3474999999996, 20, 8, 67,
     9878920138436358821ull, 11797181351298554228ull, 7268923040173613321ull},
};

class GoldenTrajectory : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenTrajectory, BitIdenticalToPreRefactorBuild) {
  const Golden& g = GetParam();
  Netlist nl = generate_circuit(spec_for(suite_entry(g.circuit), 0.08, 7));
  EXPECT_EQ(netlist_fingerprint(nl), g.gen_fp);
  EXPECT_EQ(nl.num_live_cells(), g.cells);

  FpgaGrid grid(FpgaGrid::min_grid_for(
      nl.num_logic(), nl.num_input_pads() + nl.num_output_pads()));
  LinearDelayModel dm;
  Placement pl = anneal_placement(nl, grid, dm, golden_annealer_options());
  EXPECT_EQ(placement_fingerprint(nl, pl), g.place_fp);
  EXPECT_EQ(pl.total_wirelength(), g.total_wl);  // exact, not near

  EngineOptions eopt;
  eopt.variant = EmbedVariant::kLex3;
  eopt.num_threads = 1;
  EngineResult r = run_replication_engine(nl, pl, dm, eopt);
  EXPECT_EQ(r.final_critical, g.final_crit);
  EXPECT_EQ(r.final_wirelength, g.final_wl);
  EXPECT_EQ(r.total_replicated, g.replicated);
  EXPECT_EQ(r.total_unified, g.unified);
  EXPECT_EQ(r.history.size(), g.history);
  EXPECT_EQ(history_fingerprint(r), g.hist_fp);
  EXPECT_EQ(netlist_fingerprint(nl), g.post_nl_fp);
  EXPECT_EQ(placement_fingerprint(nl, pl), g.post_pl_fp);
}

INSTANTIATE_TEST_SUITE_P(Circuits, GoldenTrajectory,
                         ::testing::ValuesIn(kGoldens),
                         [](const auto& info) { return info.param.circuit; });

// ---- generator at scale --------------------------------------------------

// clma scaled 13x: ~1.09e5 cells. Pinned against the pre-refactor build, so
// this doubles as the proof that the Fenwick-tree PO pool draws the same
// pads the erase-compacted vector did, at a size where they'd diverge on
// the first mistake.
TEST(GeneratorScale, DeterministicAndStructuralAt1e5Cells) {
  CircuitSpec spec = spec_for(suite_entry("clma"), 13.0, 42);
  Netlist nl = generate_circuit(spec);
  EXPECT_EQ(netlist_fingerprint(nl), 15528197113067072021ull);
  EXPECT_EQ(nl.num_live_cells(), 109498u);
  EXPECT_EQ(nl.num_logic(), 108979u);
  EXPECT_GE(nl.num_live_cells(), 100000u);

  // Structure: pads present, every live cell's nets wired consistently.
  EXPECT_GT(nl.num_input_pads(), 0u);
  EXPECT_GT(nl.num_output_pads(), 0u);
  std::size_t iterated = 0;
  for (CellId c : nl.live_cell_ids()) {
    ++iterated;
    const Cell& cell = nl.cell(c);
    if (cell.output.valid()) {
      EXPECT_TRUE(nl.net_alive(cell.output));
    }
    for (NetId n : cell.inputs) {
      if (n.valid()) {
        EXPECT_TRUE(nl.net_alive(n));
      }
    }
  }
  EXPECT_EQ(iterated, nl.num_live_cells());
  EXPECT_EQ(nl.num_live_nets(), nl.live_nets().size());
}

// ---- flat vs legacy differentials at anneal scale ------------------------

TEST(FlatVsLegacy, MonotoneBoundIdentical) {
  Placed p("apex2", 0.15, golden_annealer_options());
  TimingGraph tg(p.nl, p.pl, p.dm);
  EXPECT_EQ(monotone_lower_bound(tg), monotone_lower_bound_legacy(tg));
}

TEST(FlatVsLegacy, EpsSptIdentical) {
  Placed p("apex2", 0.15, golden_annealer_options());
  TimingGraph tg(p.nl, p.pl, p.dm);
  TimingNodeId sink = tg.critical_sink();
  ASSERT_TRUE(sink.valid());
  for (double eps : {0.0, 0.5, 2.0, 8.0}) {
    Spt a = extract_eps_spt(tg, sink, eps);
    Spt b = extract_eps_spt_legacy(tg, sink, eps);
    ASSERT_EQ(a.nodes, b.nodes) << "eps " << eps;
    for (TimingNodeId n : a.nodes) {
      EXPECT_EQ(a.parent(n), b.parent(n));
      EXPECT_EQ(a.parent_pin(n), b.parent_pin(n));
      EXPECT_EQ(a.dist_to_root(n), b.dist_to_root(n));
    }
  }
}

TEST(FlatVsLegacy, IncrementalBboxPlacementIdentical) {
  AnnealerOptions inc = golden_annealer_options();
  inc.incremental_bbox = true;
  AnnealerOptions legacy = golden_annealer_options();
  legacy.incremental_bbox = false;
  Placed a("apex2", 0.15, inc);
  Placed b("apex2", 0.15, legacy);
  EXPECT_EQ(placement_fingerprint(a.nl, a.pl), placement_fingerprint(b.nl, b.pl));
  EXPECT_EQ(a.pl.total_wirelength(), b.pl.total_wirelength());
}

TEST(FlatVsLegacy, WirelengthDrivenAnnealIdentical) {
  // The wirelength-driven mode skips the incremental STA entirely; the
  // trajectory must not notice (it only reads the wiring term).
  AnnealerOptions inc = golden_annealer_options();
  inc.timing_driven = false;
  AnnealerOptions legacy = inc;
  legacy.incremental_bbox = false;
  Placed a("apex2", 0.15, inc);
  Placed b("apex2", 0.15, legacy);
  EXPECT_EQ(placement_fingerprint(a.nl, a.pl), placement_fingerprint(b.nl, b.pl));
}

// ---- engine: layout and thread-count invariance --------------------------

TEST(FlatVsLegacy, EngineTrajectoryIdenticalAcrossLayoutAndThreads) {
  EngineOptions base;
  base.variant = EmbedVariant::kLex3;
  base.max_iterations = 8;
  base.num_threads = 1;

  struct Run {
    std::uint64_t hist, nl_fp, pl_fp, truncations;
  };
  auto run = [&](bool flat, int threads, int region_points) {
    Placed p("ex5p", 0.08, golden_annealer_options());
    EngineOptions eopt = base;
    eopt.flat_scratch = flat;
    eopt.num_threads = threads;
    eopt.max_region_points = region_points;
    EngineResult r = run_replication_engine(p.nl, p.pl, p.dm, eopt);
    return Run{history_fingerprint(r), netlist_fingerprint(p.nl),
               placement_fingerprint(p.nl, p.pl), r.region_truncations};
  };

  const Run ref = run(true, 1, 0);
  EXPECT_EQ(ref.truncations, 0u);  // guard off => counter stays silent
  for (bool flat : {true, false}) {
    for (int threads : {1, 2, 4}) {
      Run o = run(flat, threads, 0);
      EXPECT_EQ(o.hist, ref.hist) << "flat " << flat << " threads " << threads;
      EXPECT_EQ(o.nl_fp, ref.nl_fp) << "flat " << flat << " threads " << threads;
      EXPECT_EQ(o.pl_fp, ref.pl_fp) << "flat " << flat << " threads " << threads;
    }
  }

  // The region guard changes which embeddings run (legitimately different
  // results from uncapped), but must itself be deterministic across layouts
  // and thread counts.
  // The cap must sit below the die's point count (ex5p at this scale is a
  // ~12x12 grid, ~144 sites) or the guard never fires; 48 points forces
  // truncation on any region spanning more than a ~7x7 window, which the
  // consumed trajectory is guaranteed to contain.
  const Run guarded = run(true, 1, 48);
  EXPECT_GT(guarded.truncations, 0u);
  for (bool flat : {true, false}) {
    for (int threads : {1, 4}) {
      Run o = run(flat, threads, 48);
      EXPECT_EQ(o.hist, guarded.hist) << "flat " << flat << " threads " << threads;
      EXPECT_EQ(o.nl_fp, guarded.nl_fp) << "flat " << flat << " threads " << threads;
      EXPECT_EQ(o.truncations, guarded.truncations)
          << "flat " << flat << " threads " << threads;
    }
  }
}

}  // namespace
}  // namespace repro
