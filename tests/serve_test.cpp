// Flow service tests: snapshot format, checkpoint/resume determinism,
// scheduler retry/timeout classification and batch robustness.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "gen/circuit_gen.h"
#include "place/annealer.h"
#include "serve/jsonl.h"
#include "serve/scheduler.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace repro {
namespace {

// Scratch directory unique to the test, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("repro_serve_" + name + "_" + std::to_string(::getpid())))
                 .string()) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

// ---- JSONL ----------------------------------------------------------------

TEST(Jsonl, ParsesFlatObject) {
  const auto obj = parse_jsonl_object(
      R"({"id":"a-1","scale":0.25,"route":true,"note":null})");
  ASSERT_EQ(obj.size(), 4u);
  EXPECT_EQ(obj.at("id").kind, JsonValue::Kind::kString);
  EXPECT_EQ(obj.at("id").str, "a-1");
  EXPECT_EQ(obj.at("scale").kind, JsonValue::Kind::kNumber);
  EXPECT_DOUBLE_EQ(obj.at("scale").num, 0.25);
  EXPECT_EQ(obj.at("route").kind, JsonValue::Kind::kBool);
  EXPECT_TRUE(obj.at("route").b);
  EXPECT_EQ(obj.at("note").kind, JsonValue::Kind::kNull);
}

TEST(Jsonl, RejectsMalformedInput) {
  EXPECT_THROW(parse_jsonl_object(""), JsonlError);
  EXPECT_THROW(parse_jsonl_object("{"), JsonlError);
  EXPECT_THROW(parse_jsonl_object(R"({"a":1} trailing)"), JsonlError);
  EXPECT_THROW(parse_jsonl_object(R"({"a":1,"a":2})"), JsonlError);
  EXPECT_THROW(parse_jsonl_object(R"({"a":{"nested":1}})"), JsonlError);
  EXPECT_THROW(parse_jsonl_object(R"({"a":[1,2]})"), JsonlError);
  EXPECT_THROW(parse_jsonl_object(R"({"a":12x})"), JsonlError);
  EXPECT_THROW(parse_jsonl_object(R"({"a":nan})"), JsonlError);
}

TEST(Jsonl, DoubleSurvivesTextRoundTripBitExactly) {
  const double v = 0.1 + 0.2;  // not representable "exactly" in decimal
  JsonlWriter w;
  w.field("v", v);
  const auto obj = parse_jsonl_object(w.take());
  EXPECT_EQ(obj.at("v").num, v);  // bitwise, not approximate
}

TEST(Jsonl, QuotesSpecialCharacters) {
  JsonlWriter w;
  w.field("k", std::string("a\"b\\c\nd"));
  const auto obj = parse_jsonl_object(w.take());
  EXPECT_EQ(obj.at("k").str, "a\"b\\c\nd");
}

TEST(Jsonl, ParseJobLineRejectsUnknownKeys) {
  EXPECT_NO_THROW(parse_job_line(R"({"id":"x","circuit":"tseng"})"));
  EXPECT_THROW(parse_job_line(R"({"id":"x","circut":"tseng"})"), JsonlError);
  EXPECT_THROW(parse_job_line(R"({"id":7})"), JsonlError);
}

// ---- snapshot format ------------------------------------------------------

FlowSnapshot make_placed_snapshot(const char* circuit, double scale,
                                  std::uint64_t seed) {
  FlowSnapshot s;
  s.job_id = std::string(circuit) + "-job";
  s.circuit = circuit;
  s.variant = "lex3";
  s.stage = FlowStage::kPlaced;
  s.cfg.scale = scale;
  s.cfg.seed = seed;
  Rng rng(seed);
  const McncCircuit* c = nullptr;
  for (const McncCircuit& m : mcnc_suite())
    if (s.circuit == m.name) c = &m;
  s.nl = std::make_unique<Netlist>(generate_circuit(spec_for(*c, scale, seed)));
  s.grid_n = FpgaGrid::min_grid_for(
      s.nl->num_logic(), s.nl->num_input_pads() + s.nl->num_output_pads());
  s.grid = std::make_unique<FpgaGrid>(s.grid_n, s.grid_io_rat);
  AnnealerOptions aopt;
  aopt.seed = rng.next_u64();
  s.pl = std::make_unique<Placement>(
      anneal_placement(*s.nl, *s.grid, s.cfg.delay, aopt));
  s.rng_state = rng.state();
  s.place_seconds = 1.25;
  return s;
}

TEST(Snapshot, RoundTripIsByteIdentical) {
  FlowSnapshot s = make_placed_snapshot("tseng", 0.05, 11);
  const std::string bytes = serialize_snapshot(s);
  FlowSnapshot parsed = parse_snapshot(bytes);
  EXPECT_EQ(parsed.job_id, s.job_id);
  EXPECT_EQ(parsed.circuit, s.circuit);
  EXPECT_EQ(parsed.stage, FlowStage::kPlaced);
  EXPECT_EQ(parsed.rng_state, s.rng_state);
  ASSERT_TRUE(parsed.nl && parsed.pl && parsed.grid);
  EXPECT_EQ(parsed.nl->num_logic(), s.nl->num_logic());
  EXPECT_TRUE(parsed.pl->legal());
  // Serializing the parsed snapshot reproduces the input bytes exactly.
  EXPECT_EQ(serialize_snapshot(parsed), bytes);
}

TEST(Snapshot, PreservesPlacementOccupantOrderAndDeadCells) {
  FlowSnapshot s = make_placed_snapshot("ex5p", 0.05, 3);
  const std::string bytes = serialize_snapshot(s);
  FlowSnapshot parsed = parse_snapshot(bytes);
  ASSERT_EQ(parsed.nl->cell_capacity(), s.nl->cell_capacity());
  for (std::size_t i = 0; i < s.nl->cell_capacity(); ++i) {
    const CellId id(static_cast<CellId::value_type>(i));
    ASSERT_EQ(parsed.pl->placed(id), s.pl->placed(id));
    if (!s.pl->placed(id)) continue;
    EXPECT_EQ(parsed.pl->location(id), s.pl->location(id));
    // Occupant-list order at the location is observed by RNG-driven
    // consumers; it must survive the round trip verbatim.
    EXPECT_EQ(parsed.pl->cells_at(parsed.pl->location(id)),
              s.pl->cells_at(s.pl->location(id)));
  }
}

// Snapshot format v2: the placer backend and every analytic option field
// ride in the config block and must survive the round trip bit-exactly —
// a resumed job re-derives its placement trajectory from them.
TEST(Snapshot, PlacerBackendAndAnalyticOptionsRoundTrip) {
  FlowSnapshot s = make_placed_snapshot("tseng", 0.05, 17);
  s.cfg.placer = PlacerBackend::kAnalytic;
  s.cfg.analytic.max_iterations = 123;
  s.cfg.analytic.target_overflow = 0.07;
  s.cfg.analytic.crit_weight = 17.5;
  s.cfg.analytic.reweight_start_overflow = 0.33;
  s.cfg.analytic.seed = 0xBEEF;
  const std::string bytes = serialize_snapshot(s);
  FlowSnapshot parsed = parse_snapshot(bytes);
  EXPECT_EQ(parsed.cfg.placer, PlacerBackend::kAnalytic);
  EXPECT_EQ(parsed.cfg.analytic.max_iterations, 123);
  EXPECT_DOUBLE_EQ(parsed.cfg.analytic.target_overflow, 0.07);
  EXPECT_DOUBLE_EQ(parsed.cfg.analytic.crit_weight, 17.5);
  EXPECT_DOUBLE_EQ(parsed.cfg.analytic.reweight_start_overflow, 0.33);
  EXPECT_EQ(parsed.cfg.analytic.seed, 0xBEEFull);
  EXPECT_EQ(serialize_snapshot(parsed), bytes);

  for (PlacerBackend b : {PlacerBackend::kAnnealer, PlacerBackend::kAnalytic,
                          PlacerBackend::kHybrid}) {
    FlowSnapshot v = make_placed_snapshot("tseng", 0.05, 18);
    v.cfg.placer = b;
    EXPECT_EQ(parse_snapshot(serialize_snapshot(v)).cfg.placer, b);
  }
}

// Job specs select the backend per job; unknown names must be rejected at
// submission, and the field round-trips through parse_job_line.
TEST(Jsonl, JobSpecPlacerField) {
  JobSpec spec =
      parse_job_line(R"({"id":"x","circuit":"tseng","placer":"analytic"})");
  EXPECT_EQ(spec.placer, "analytic");
  EXPECT_TRUE(parse_job_line(R"({"id":"x","circuit":"tseng"})").placer.empty());
}

TEST(Snapshot, RejectsCorruptedBytes) {
  FlowSnapshot s = make_placed_snapshot("tseng", 0.05, 5);
  const std::string bytes = serialize_snapshot(s);

  // Bad magic.
  std::string bad = bytes;
  bad[0] = 'X';
  EXPECT_THROW(parse_snapshot(bad), SnapshotError);

  // Unsupported version.
  bad = bytes;
  bad[4] = static_cast<char>(0x7F);
  EXPECT_THROW(parse_snapshot(bad), SnapshotError);

  // Flipped payload byte -> checksum mismatch, reported as corruption.
  bad = bytes;
  bad[bytes.size() / 2] ^= 0x20;
  try {
    parse_snapshot(bad);
    FAIL() << "corrupted snapshot accepted";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }

  // Truncation at every structurally interesting prefix length.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{3}, std::size_t{12}, bytes.size() - 1}) {
    EXPECT_THROW(parse_snapshot(std::string_view(bytes).substr(0, len)),
                 SnapshotError)
        << "prefix length " << len;
  }
}

TEST(Snapshot, FileRoundTripAndCorruptedFileRejected) {
  TempDir dir("snapfile");
  FlowSnapshot s = make_placed_snapshot("tseng", 0.05, 7);
  const std::string path = dir.path + "/t.ckpt";
  write_snapshot_file(s, path);
  FlowSnapshot loaded = read_snapshot_file(path);
  EXPECT_EQ(serialize_snapshot(loaded), serialize_snapshot(s));

  // Corrupt one byte on disk; the reader must reject, not crash or accept.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 64, SEEK_SET);
    const char x = 'Z';
    std::fwrite(&x, 1, 1, f);
    std::fclose(f);
  }
  EXPECT_THROW(read_snapshot_file(path), SnapshotError);
  EXPECT_THROW(read_snapshot_file(dir.path + "/missing.ckpt"), SnapshotError);
}

// Rewrites the header's payload-size and checksum fields to match the
// (possibly tampered-with) payload, so the tests below get past the outer
// integrity layer and hit the structural validation — modeling a buggy
// writer or an attacker who recomputed the checksum.
std::string refresh_header(std::string bytes) {
  const std::size_t header = 24;  // magic(4) version(4) size(8) checksum(8)
  EXPECT_GE(bytes.size(), header);
  const std::uint64_t size = bytes.size() - header;
  std::uint64_t sum = 0xcbf29ce484222325ULL;  // FNV-1a, as the writer uses
  for (std::size_t i = header; i < bytes.size(); ++i) {
    sum ^= static_cast<unsigned char>(bytes[i]);
    sum *= 0x100000001b3ULL;
  }
  for (int i = 0; i < 8; ++i) {
    bytes[8 + i] = static_cast<char>((size >> (8 * i)) & 0xFF);
    bytes[16 + i] = static_cast<char>((sum >> (8 * i)) & 0xFF);
  }
  return bytes;
}

TEST(Snapshot, RejectsTrailingGarbage) {
  const FlowSnapshot s = make_placed_snapshot("tseng", 0.05, 5);
  const std::string bytes = serialize_snapshot(s);

  // Appended garbage the header does not account for: size mismatch.
  try {
    parse_snapshot(bytes + "extra");
    FAIL() << "snapshot with unaccounted trailing bytes accepted";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("size mismatch"), std::string::npos);
  }

  // Garbage folded into the declared payload with a recomputed checksum:
  // the reader must notice undecoded bytes remain, not silently accept.
  try {
    parse_snapshot(refresh_header(bytes + "extra"));
    FAIL() << "snapshot with checksummed trailing bytes accepted";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("trailing bytes"), std::string::npos);
  }
}

TEST(Snapshot, RejectsNonFiniteDoubles) {
  // A NaN or infinity in any double field (a writer-side bug) must be
  // rejected on read: resumed arithmetic would silently poison every
  // downstream metric.
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()}) {
    FlowSnapshot s = make_placed_snapshot("tseng", 0.05, 5);
    s.place_seconds = bad;
    try {
      parse_snapshot(serialize_snapshot(s));
      FAIL() << "snapshot with non-finite place_seconds accepted";
    } catch (const SnapshotError& e) {
      EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos);
    }
    FlowSnapshot s2 = make_placed_snapshot("tseng", 0.05, 5);
    s2.cfg.scale = bad;
    EXPECT_THROW(parse_snapshot(serialize_snapshot(s2)), SnapshotError);
  }
}

TEST(Snapshot, RejectsOutOfRangeOccupantId) {
  // Checksum-valid snapshot whose placement section holds an occupant cell
  // id beyond the netlist's range — before validation was added this
  // overread the heap (see fuzz/crashes/snapshot/). The occupant lists sit
  // near the end of the payload; corrupt 4-byte windows back-to-front with
  // an implausible id until the reader trips over one.
  const std::string bytes = serialize_snapshot(make_placed_snapshot("tseng", 0.05, 5));
  bool rejected = false;
  const std::size_t first =
      bytes.size() > 1024 + 4 ? bytes.size() - 1024 - 4 : 24;
  for (std::size_t off = bytes.size() - 4; off > first && !rejected; --off) {
    std::string bad = bytes;
    const std::uint32_t huge = 0x7FFFFF7Fu;
    std::memcpy(&bad[off], &huge, 4);
    try {
      parse_snapshot(refresh_header(std::move(bad)));
    } catch (const SnapshotError& e) {
      if (std::string(e.what()).find("occupant cell id out of range") !=
          std::string::npos)
        rejected = true;
    }
  }
  EXPECT_TRUE(rejected)
      << "no corrupted occupant id was rejected by the structured check";
}

TEST(Jsonl, ParseJobLineRejectsNonIntegralNumbers) {
  // Narrowing a negative, huge, or fractional double into seed/threads is
  // undefined behaviour; the parser must reject with a structured error
  // (see fuzz/crashes/jsonl/).
  EXPECT_NO_THROW(parse_job_line(R"({"id":"x","circuit":"tseng","seed":0})"));
  EXPECT_THROW(parse_job_line(R"({"id":"x","circuit":"tseng","seed":-1})"),
               JsonlError);
  EXPECT_THROW(parse_job_line(R"({"id":"x","circuit":"tseng","seed":1.5})"),
               JsonlError);
  EXPECT_THROW(parse_job_line(R"({"id":"x","circuit":"tseng","seed":1e300})"),
               JsonlError);
  EXPECT_THROW(
      parse_job_line(R"({"id":"x","circuit":"tseng","engine_threads":2147483648})"),
      JsonlError);
  EXPECT_THROW(
      parse_job_line(R"({"id":"x","circuit":"tseng","engine_threads":0.5})"),
      JsonlError);
}

// ---- scheduler ------------------------------------------------------------

TEST(Scheduler, RetriesFailuresUpToBudget) {
  SchedulerOptions opt;
  opt.threads = 1;
  opt.max_retries = 2;
  opt.retry_backoff_seconds = 0;
  Scheduler sched(opt);
  int calls = 0;
  auto outcomes = sched.run_all({[&](int attempt) {
    ++calls;
    if (attempt < 3) throw std::runtime_error("flaky");
  }});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].state, JobState::kDone);
  EXPECT_EQ(outcomes[0].attempts, 3);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sched.stats().retries.load(), 2u);
  EXPECT_EQ(sched.stats().jobs_completed.load(), 1u);
}

TEST(Scheduler, FailsWhenBudgetExhaustedAndOthersComplete) {
  SchedulerOptions opt;
  opt.threads = 2;
  opt.max_retries = 1;
  opt.retry_backoff_seconds = 0;
  Scheduler sched(opt);
  auto outcomes = sched.run_all({
      [](int) { throw std::runtime_error("always broken"); },
      [](int) {},
  });
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].state, JobState::kFailed);
  EXPECT_EQ(outcomes[0].attempts, 2);
  EXPECT_EQ(outcomes[0].error, "always broken");
  EXPECT_EQ(outcomes[1].state, JobState::kDone);
}

TEST(Scheduler, TimeoutsAreNotRetried) {
  SchedulerOptions opt;
  opt.threads = 1;
  opt.max_retries = 5;
  Scheduler sched(opt);
  int calls = 0;
  auto outcomes = sched.run_all({[&](int) {
    ++calls;
    throw FlowCancelled("route", /*killed=*/false);
  }});
  EXPECT_EQ(outcomes[0].state, JobState::kTimedOut);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(sched.stats().jobs_timed_out.load(), 1u);
}

TEST(Scheduler, KillFlagClassifiesAsCheckpointed) {
  Scheduler sched({});
  auto outcomes = sched.run_all({[&](int) {
    sched.request_shutdown();
    CancelToken token;
    token.set_kill_flag(sched.kill_flag());
    token.check("replicate");
  }});
  EXPECT_EQ(outcomes[0].state, JobState::kCheckpointed);
}

// Retry backoff jitter is a pure function of (base, retry index, job seed):
// the exact sequence is pinned so a refactor cannot silently change retry
// timing, and the jittered value always stays inside the exponential
// envelope [base * 2^(k-1) / 2, base * 2^(k-1)).
TEST(Scheduler, RetryBackoffJitterSequenceIsPinned) {
  EXPECT_DOUBLE_EQ(retry_backoff_with_jitter(1.0, 1, 42),
                   0.8707824393859116);
  EXPECT_DOUBLE_EQ(retry_backoff_with_jitter(1.0, 2, 42),
                   1.1599103928769201);
  EXPECT_DOUBLE_EQ(retry_backoff_with_jitter(1.0, 3, 42),
                   2.5572022605102775);
  EXPECT_DOUBLE_EQ(retry_backoff_with_jitter(1.0, 4, 42),
                   5.3767628660945501);
  EXPECT_DOUBLE_EQ(retry_backoff_with_jitter(0.5, 1, 7),
                   0.34745743709781785);

  // Degenerate inputs are a zero sleep, never a negative or NaN one.
  EXPECT_EQ(retry_backoff_with_jitter(0, 1, 42), 0);
  EXPECT_EQ(retry_backoff_with_jitter(-1, 1, 42), 0);
  EXPECT_EQ(retry_backoff_with_jitter(1.0, 0, 42), 0);

  // Envelope + determinism: same seed repeats exactly, and different job
  // seeds decorrelate (no thundering herd on shared infrastructure).
  for (const std::uint64_t seed : {0ull, 7ull, 0xffffffffffffffffull}) {
    for (int k = 1; k <= 8; ++k) {
      const double lo = std::ldexp(1.0, k - 1);  // (base=2) * 2^(k-1) / 2
      const double v = retry_backoff_with_jitter(2.0, k, seed);
      EXPECT_EQ(v, retry_backoff_with_jitter(2.0, k, seed));
      EXPECT_GE(v, lo * 0.999999);
      EXPECT_LT(v, 2 * lo);
    }
  }
  EXPECT_NE(retry_backoff_with_jitter(1.0, 1, 1),
            retry_backoff_with_jitter(1.0, 1, 2));
}

// ---- service: determinism across checkpoint/resume and thread counts ------

JobSpec small_job(const char* circuit, std::uint64_t seed, int engine_threads) {
  JobSpec spec;
  spec.id = std::string(circuit) + "-t" + std::to_string(engine_threads);
  spec.circuit = circuit;
  spec.scale = 0.05;
  spec.seed = seed;
  spec.variant = "lex3";
  spec.route = true;
  spec.engine_threads = engine_threads;
  return spec;
}

// Stage-boundary snapshot after the anneal, resumed by a fresh service
// instance, must reproduce the straight-through run's result line (which
// carries every CircuitMetrics field at %.17g) byte-for-byte — for several
// circuits and for more than one thread count.
TEST(FlowService, ResumeAfterAnnealReproducesStraightRunBitExactly) {
  const char* circuits[] = {"tseng", "ex5p", "s298"};
  for (const char* circuit : circuits) {
    std::string line_per_threads[2];
    for (const int engine_threads : {1, 2}) {
      const JobSpec spec = small_job(circuit, 11, engine_threads);

      ServiceOptions straight_opt;
      straight_opt.threads = 1;
      FlowService straight(straight_opt);
      const auto straight_res = straight.run_batch({spec});
      ASSERT_EQ(straight_res[0].state, JobState::kDone) << circuit;
      ASSERT_TRUE(straight_res[0].has_metrics) << circuit;
      const std::string want = format_result_line(straight_res[0], true);

      // Interrupt right after the first (post-anneal) checkpoint.
      TempDir dir(std::string("resume_") + spec.id);
      ServiceOptions crash_opt;
      crash_opt.threads = 1;
      crash_opt.checkpoint_dir = dir.path;
      crash_opt.stop_after_checkpoints = 1;
      FlowService crash(crash_opt);
      const auto crashed = crash.run_batch({spec});
      ASSERT_EQ(crashed[0].state, JobState::kCheckpointed) << circuit;
      ASSERT_EQ(crashed[0].error_code, kJobInterrupted);
      ASSERT_EQ(crashed[0].completed_stage, FlowStage::kPlaced) << circuit;
      ASSERT_GE(crash.stats().checkpoints_written, 1u);
      ASSERT_GT(crash.stats().checkpoint_bytes, 0u);

      // Fresh service, fresh state: resume from the on-disk snapshot.
      ServiceOptions resume_opt;
      resume_opt.threads = 1;
      resume_opt.checkpoint_dir = dir.path;
      resume_opt.resume = true;
      FlowService resume(resume_opt);
      const auto resumed = resume.run_batch({spec});
      ASSERT_EQ(resumed[0].state, JobState::kDone) << circuit;
      EXPECT_TRUE(resumed[0].resumed);
      EXPECT_EQ(resume.stats().jobs_resumed, 1u);
      EXPECT_EQ(format_result_line(resumed[0], true), want)
          << circuit << " resumed run diverged from straight run";

      line_per_threads[engine_threads - 1] = want;
    }
    // Engine thread count never changes results (the id differs by design;
    // compare everything after it).
    const auto tail = [](const std::string& s) {
      return s.substr(s.find("\"circuit\""));
    };
    EXPECT_EQ(tail(line_per_threads[0]), tail(line_per_threads[1]))
        << circuit << " results differ across engine thread counts";
  }
}

// Same byte-identity contract with the invariant auditor enabled: the result
// line then carries `audit_checks`, which must count exactly what an
// uninterrupted run counts. The snapshot persists the cumulative stage-audit
// counter for the skipped stages, and the defensive re-audit of the restored
// state must not inflate it (regression: resumed jobs under-reported
// audit_checks because the counter was never checkpointed).
TEST(FlowService, ResumeUnderParanoidAuditKeepsAuditChecksByteIdentical) {
  const JobSpec spec = small_job("tseng", 11, 1);

  ServiceOptions straight_opt;
  straight_opt.threads = 1;
  straight_opt.base.audit = AuditLevel::kParanoid;
  FlowService straight(straight_opt);
  const auto straight_res = straight.run_batch({spec});
  ASSERT_EQ(straight_res[0].state, JobState::kDone);
  ASSERT_GT(straight_res[0].audit_checks, 0);
  const std::string want = format_result_line(straight_res[0], true);

  // Interrupt after each of the two audited stage boundaries in turn.
  for (const int checkpoints : {1, 2}) {
    TempDir dir("resume_audit_" + std::to_string(checkpoints));
    ServiceOptions crash_opt;
    crash_opt.threads = 1;
    crash_opt.base.audit = AuditLevel::kParanoid;
    crash_opt.checkpoint_dir = dir.path;
    crash_opt.stop_after_checkpoints = checkpoints;
    FlowService crash(crash_opt);
    ASSERT_EQ(crash.run_batch({spec})[0].state, JobState::kCheckpointed)
        << checkpoints;

    ServiceOptions resume_opt;
    resume_opt.threads = 1;
    resume_opt.base.audit = AuditLevel::kParanoid;
    resume_opt.checkpoint_dir = dir.path;
    resume_opt.resume = true;
    FlowService resume(resume_opt);
    const auto resumed = resume.run_batch({spec});
    ASSERT_EQ(resumed[0].state, JobState::kDone) << checkpoints;
    EXPECT_TRUE(resumed[0].resumed);
    EXPECT_EQ(resumed[0].audit_checks, straight_res[0].audit_checks)
        << "audit_checks diverged resuming after checkpoint " << checkpoints;
    EXPECT_EQ(format_result_line(resumed[0], true), want)
        << "resumed run diverged from straight run (checkpoint "
        << checkpoints << ")";
  }
}

// A stale checkpoint whose parameters do not match the spec must be ignored,
// not resumed into a wrong result.
TEST(FlowService, MismatchedCheckpointIsIgnored) {
  TempDir dir("stale");
  JobSpec spec = small_job("tseng", 11, 1);
  spec.route = false;

  {
    ServiceOptions opt;
    opt.checkpoint_dir = dir.path;
    FlowService svc(opt);
    ASSERT_EQ(svc.run_batch({spec})[0].state, JobState::kDone);
  }

  // Same job id, different seed: the old snapshot must not be picked up.
  spec.seed = 12;
  ServiceOptions opt;
  opt.checkpoint_dir = dir.path;
  opt.resume = true;
  FlowService svc(opt);
  const auto res = svc.run_batch({spec});
  ASSERT_EQ(res[0].state, JobState::kDone);
  EXPECT_FALSE(res[0].resumed);
  EXPECT_EQ(svc.stats().jobs_resumed, 0u);
}

// ---- service: robustness --------------------------------------------------

// One injected hang and one injected failure never take the batch down: the
// healthy jobs complete, the sick ones are reported with nonzero per-job
// error codes, and run_batch itself does not throw.
TEST(FlowService, BatchSurvivesHangAndFailure) {
  JobSpec good = small_job("tseng", 3, 1);
  good.route = false;

  JobSpec hang = small_job("ex5p", 3, 1);
  hang.id = "hang";
  hang.route = false;
  hang.inject_hang_stage = "replicate";
  hang.timeout_seconds = 0.2;

  JobSpec fail = small_job("s298", 3, 1);
  fail.id = "fail";
  fail.route = false;
  fail.inject_fail_stage = "place";

  JobSpec invalid;
  invalid.id = "invalid";
  invalid.circuit = "not-a-circuit";

  ServiceOptions opt;
  opt.threads = 2;
  opt.max_retries = 1;
  opt.retry_backoff_seconds = 0;
  FlowService svc(opt);
  const auto res = svc.run_batch({good, hang, fail, invalid});
  ASSERT_EQ(res.size(), 4u);

  EXPECT_EQ(res[0].state, JobState::kDone);
  EXPECT_EQ(res[0].error_code, kJobOk);
  EXPECT_EQ(res[0].completed_stage, FlowStage::kRouted);

  EXPECT_EQ(res[1].state, JobState::kTimedOut);
  EXPECT_EQ(res[1].error_code, kJobTimedOut);
  EXPECT_EQ(res[1].attempts, 1);  // deterministic: timeouts are not retried
  EXPECT_EQ(res[1].completed_stage, FlowStage::kPlaced);

  EXPECT_EQ(res[2].state, JobState::kFailed);
  EXPECT_EQ(res[2].error_code, kJobFailed);
  EXPECT_EQ(res[2].attempts, 2);  // retried once, then gave up
  EXPECT_NE(res[2].error.find("injected failure"), std::string::npos);

  EXPECT_EQ(res[3].state, JobState::kFailed);
  EXPECT_EQ(res[3].error_code, kJobInvalidSpec);

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.jobs_completed, 1u);
  EXPECT_EQ(stats.jobs_timed_out, 1u);
  EXPECT_EQ(stats.jobs_failed, 1u);
  EXPECT_EQ(stats.jobs_invalid, 1u);
  EXPECT_EQ(stats.jobs_retried, 1u);

  // The batch's JSONL lines parse back and carry the states.
  for (const JobResult& r : res) {
    const auto obj = parse_jsonl_object(format_result_line(r, false));
    EXPECT_EQ(obj.at("state").str, job_state_name(r.state));
    EXPECT_EQ(static_cast<int>(obj.at("error_code").num), r.error_code);
  }
}

TEST(FlowService, RejectsDuplicateJobIdsAndBadIds) {
  JobSpec a = small_job("tseng", 3, 1);
  a.route = false;
  JobSpec dup = a;
  JobSpec traversal = a;
  traversal.id = "../escape";

  ServiceOptions opt;
  FlowService svc(opt);
  const auto res = svc.run_batch({a, dup, traversal});
  EXPECT_EQ(res[0].state, JobState::kDone);
  EXPECT_EQ(res[1].state, JobState::kFailed);
  EXPECT_EQ(res[1].error_code, kJobInvalidSpec);
  EXPECT_NE(res[1].error.find("duplicate"), std::string::npos);
  EXPECT_EQ(res[2].error_code, kJobInvalidSpec);
}

}  // namespace
}  // namespace repro
