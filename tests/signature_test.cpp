#include <gtest/gtest.h>

#include "embed/signature.h"

namespace repro {
namespace {

TEST(DelayVec, EmptyBehaviour) {
  DelayVec d;
  EXPECT_EQ(d.n, 0);
  EXPECT_EQ(d.primary(), -std::numeric_limits<double>::infinity());
  d.shift(5.0);  // no entries: no-op
  EXPECT_EQ(d.n, 0);
}

TEST(DelayVec, SingleAndPairFactories) {
  DelayVec s = DelayVec::single(4.5);
  EXPECT_EQ(s.n, 1);
  EXPECT_DOUBLE_EQ(s.primary(), 4.5);
  DelayVec p = DelayVec::pair(9.0, 3.0);
  EXPECT_EQ(p.n, 2);
  EXPECT_DOUBLE_EQ(p.v[0], 9.0);
  EXPECT_DOUBLE_EQ(p.v[1], 3.0);
}

TEST(DelayVec, MergeWithEmptyIsIdentityTruncated) {
  DelayVec empty;
  DelayVec p = DelayVec::pair(7.0, 2.0);
  DelayVec m1 = empty.merged_with(p, 3);
  EXPECT_EQ(m1.n, 2);
  EXPECT_DOUBLE_EQ(m1.v[0], 7.0);
  DelayVec m2 = p.merged_with(empty, 1);
  EXPECT_EQ(m2.n, 1);
  EXPECT_DOUBLE_EQ(m2.v[0], 7.0);
}

TEST(DelayVec, MergePreservesDuplicates) {
  // Two distinct paths with identical delays must both be tracked (the
  // paper's multiset-removal formulation).
  DelayVec a = DelayVec::single(5.0);
  DelayVec b = DelayVec::single(5.0);
  DelayVec m = a.merged_with(b, 3);
  EXPECT_EQ(m.n, 2);
  EXPECT_DOUBLE_EQ(m.v[0], 5.0);
  EXPECT_DOUBLE_EQ(m.v[1], 5.0);
}

TEST(DelayVec, MergeAtFullCapacity) {
  DelayVec a;
  a.n = 3;
  a.v[0] = 9;
  a.v[1] = 7;
  a.v[2] = 5;
  DelayVec b;
  b.n = 3;
  b.v[0] = 8;
  b.v[1] = 6;
  b.v[2] = 4;
  DelayVec m = a.merged_with(b, DelayVec::kCapacity);
  ASSERT_EQ(m.n, 6);
  const double expect[] = {9, 8, 7, 6, 5, 4};
  for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(m.v[i], expect[i]);
}

TEST(DelayVec, LexCompareTransitiveSamples) {
  DelayVec a = DelayVec::pair(5, 1);
  DelayVec b = DelayVec::pair(5, 2);
  DelayVec c = DelayVec::pair(6, 0);
  EXPECT_LT(a.lex_compare(b), 0);
  EXPECT_LT(b.lex_compare(c), 0);
  EXPECT_LT(a.lex_compare(c), 0);
  EXPECT_GT(c.lex_compare(a), 0);
  EXPECT_TRUE(a.lex_less_equal(a));
  EXPECT_TRUE(a.lex_equal(a));
}

TEST(Provenance, DefaultsAreInitial) {
  Provenance p;
  EXPECT_EQ(p.kind, Provenance::Kind::kInitial);
  EXPECT_EQ(p.spill_index, -1);
  EXPECT_EQ(p.num_children, 0);
}

TEST(Label, DefaultsAreLive) {
  Label l;
  EXPECT_EQ(l.dead, 0);
  EXPECT_EQ(l.branching, 0);
  EXPECT_EQ(l.stem_len, 0);
  EXPECT_EQ(l.mc_weight, 0);
}

}  // namespace
}  // namespace repro
