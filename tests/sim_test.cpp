#include <gtest/gtest.h>

#include "netlist/netlist.h"
#include "netlist/sim.h"

namespace repro {
namespace {

TEST(Simulator, AndGateTruth) {
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId b = nl.add_input_pad("b");
  CellId g = nl.add_logic("g", {nl.cell(a).output, nl.cell(b).output}, 0b1000, false);
  CellId po = nl.add_output_pad("po");
  nl.connect(nl.cell(g).output, po, 0);

  Simulator sim(nl);
  auto out = sim.step({{"a", 0b1100}, {"b", 0b1010}});
  EXPECT_EQ(out["po"], 0b1000u);
}

TEST(Simulator, XorGateTruth) {
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId b = nl.add_input_pad("b");
  CellId g = nl.add_logic("g", {nl.cell(a).output, nl.cell(b).output}, 0b0110, false);
  CellId po = nl.add_output_pad("po");
  nl.connect(nl.cell(g).output, po, 0);

  Simulator sim(nl);
  auto out = sim.step({{"a", 0b1100}, {"b", 0b1010}});
  EXPECT_EQ(out["po"], 0b0110u);
}

TEST(Simulator, NotChain) {
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId n1 = nl.add_logic("n1", {nl.cell(a).output}, 0b01, false);
  CellId n2 = nl.add_logic("n2", {nl.cell(n1).output}, 0b01, false);
  CellId po = nl.add_output_pad("po");
  nl.connect(nl.cell(n2).output, po, 0);

  Simulator sim(nl);
  auto out = sim.step({{"a", 0xDEADBEEFDEADBEEFull}});
  EXPECT_EQ(out["po"], 0xDEADBEEFDEADBEEFull);
}

TEST(Simulator, RegisterDelaysByOneCycle) {
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId r = nl.add_logic("r", {nl.cell(a).output}, 0b10, true);  // D = a
  CellId po = nl.add_output_pad("po");
  nl.connect(nl.cell(r).output, po, 0);

  Simulator sim(nl);
  auto o1 = sim.step({{"a", 0xFFull}});
  EXPECT_EQ(o1["po"], 0u);  // reset state
  auto o2 = sim.step({{"a", 0x0ull}});
  EXPECT_EQ(o2["po"], 0xFFull);  // captured last cycle
  auto o3 = sim.step({{"a", 0x0ull}});
  EXPECT_EQ(o3["po"], 0u);
}

TEST(Simulator, SequentialFeedbackToggles) {
  // T-flip-flop: r.D = NOT r.Q ; po = r.Q.
  Netlist nl;
  CellId r = nl.add_logic("r", {NetId::invalid()}, 0b01, true);
  nl.connect(nl.cell(r).output, r, 0);
  CellId po = nl.add_output_pad("po");
  nl.connect(nl.cell(r).output, po, 0);

  Simulator sim(nl);
  EXPECT_EQ(sim.step({})["po"], 0u);
  EXPECT_EQ(sim.step({})["po"], ~0ull);
  EXPECT_EQ(sim.step({})["po"], 0u);
  EXPECT_EQ(sim.step({})["po"], ~0ull);
}

TEST(Simulator, ResetClearsState) {
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId r = nl.add_logic("r", {nl.cell(a).output}, 0b10, true);
  CellId po = nl.add_output_pad("po");
  nl.connect(nl.cell(r).output, po, 0);

  Simulator sim(nl);
  sim.step({{"a", ~0ull}});
  sim.reset();
  EXPECT_EQ(sim.step({{"a", 0ull}})["po"], 0u);
}

TEST(Simulator, CombinationalLoopThrows) {
  Netlist nl;
  CellId g1 = nl.add_logic("g1", {NetId::invalid()}, 0b10, false);
  CellId g2 = nl.add_logic("g2", {nl.cell(g1).output}, 0b10, false);
  nl.connect(nl.cell(g2).output, g1, 0);
  CellId po = nl.add_output_pad("po");
  nl.connect(nl.cell(g1).output, po, 0);

  Simulator sim(nl);
  EXPECT_THROW(sim.step({}), std::runtime_error);
}

TEST(Equivalence, IdenticalNetlistsAreEquivalent) {
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId b = nl.add_input_pad("b");
  CellId g = nl.add_logic("g", {nl.cell(a).output, nl.cell(b).output}, 0b0111, false);
  CellId po = nl.add_output_pad("po");
  nl.connect(nl.cell(g).output, po, 0);

  Netlist copy = nl;
  EXPECT_TRUE(functionally_equivalent(nl, copy, 16, 99));
}

TEST(Equivalence, ReplicationPreservesFunction) {
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId b = nl.add_input_pad("b");
  CellId g = nl.add_logic("g", {nl.cell(a).output, nl.cell(b).output}, 0b0110, false);
  CellId po1 = nl.add_output_pad("po1");
  CellId po2 = nl.add_output_pad("po2");
  nl.connect(nl.cell(g).output, po1, 0);
  nl.connect(nl.cell(g).output, po2, 0);

  Netlist golden = nl;
  CellId r = nl.replicate_cell(g);
  nl.reassign_input(po2, 0, nl.cell(r).output);
  EXPECT_TRUE(functionally_equivalent(golden, nl, 16, 5));
}

TEST(Equivalence, DetectsFunctionChange) {
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId g = nl.add_logic("g", {nl.cell(a).output}, 0b10, false);  // identity
  CellId po = nl.add_output_pad("po");
  nl.connect(nl.cell(g).output, po, 0);

  Netlist other;
  CellId a2 = other.add_input_pad("a");
  CellId g2 = other.add_logic("g", {other.cell(a2).output}, 0b01, false);  // NOT
  CellId po2 = other.add_output_pad("po");
  other.connect(other.cell(g2).output, po2, 0);

  std::string why;
  EXPECT_FALSE(functionally_equivalent(nl, other, 4, 5, &why));
  EXPECT_FALSE(why.empty());
}

TEST(Equivalence, DetectsIoMismatch) {
  Netlist nl;
  nl.add_input_pad("a");
  Netlist other;
  other.add_input_pad("a");
  other.add_input_pad("b");
  std::string why;
  EXPECT_FALSE(functionally_equivalent(nl, other, 1, 1, &why));
}

TEST(Equivalence, SequentialReplicationPreservesFunction) {
  // Registered cell replicated: both copies hold identical state streams.
  Netlist nl;
  CellId a = nl.add_input_pad("a");
  CellId r = nl.add_logic("r", {nl.cell(a).output}, 0b01, true);  // D = !a
  CellId g = nl.add_logic("g", {nl.cell(r).output}, 0b10, false);
  CellId po1 = nl.add_output_pad("po1");
  CellId po2 = nl.add_output_pad("po2");
  nl.connect(nl.cell(g).output, po1, 0);
  nl.connect(nl.cell(r).output, po2, 0);

  Netlist golden = nl;
  CellId rr = nl.replicate_cell(r);
  nl.reassign_input(po2, 0, nl.cell(rr).output);
  EXPECT_TRUE(functionally_equivalent(golden, nl, 32, 77));
}

}  // namespace
}  // namespace repro
