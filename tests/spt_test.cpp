#include <gtest/gtest.h>

#include <algorithm>

#include "gen/circuit_gen.h"
#include "place/placement.h"
#include "test_helpers.h"
#include "timing/spt.h"
#include "timing/timing_graph.h"

namespace repro {
namespace {

using testing::TinyPlaced;

class SptFixture : public ::testing::Test {
 protected:
  TinyPlaced t;
  TimingGraph tg{t.nl, *t.pl, t.dm};
};

TEST_F(SptFixture, ZeroEpsilonKeepsOnlySlowestSpine) {
  // Critical sink po0: arrival 9.0. Both g1 and g2 paths tie at 9.0, so with
  // eps = 0 the SPT contains po0, g3 and BOTH tied branches.
  Spt spt = extract_eps_spt(tg, tg.sink_node(t.po0), 0.0);
  EXPECT_EQ(spt.root, tg.sink_node(t.po0));
  EXPECT_TRUE(spt.contains(tg.out_node(t.g3)));
  EXPECT_TRUE(spt.contains(tg.out_node(t.g1)));
  EXPECT_TRUE(spt.contains(tg.out_node(t.g2)));
  EXPECT_TRUE(spt.contains(tg.out_node(t.pi0)));
  EXPECT_TRUE(spt.contains(tg.out_node(t.pi1)));
  // The flip-flop Q is not in po0's fanin cone.
  EXPECT_FALSE(spt.contains(tg.out_node(t.r)));
}

TEST_F(SptFixture, ParentPointsTowardRoot) {
  Spt spt = extract_eps_spt(tg, tg.sink_node(t.po0), 0.0);
  EXPECT_EQ(spt.parent(tg.out_node(t.g3)), tg.sink_node(t.po0));
  EXPECT_EQ(spt.parent(tg.out_node(t.g1)), tg.out_node(t.g3));
  EXPECT_EQ(spt.parent(tg.out_node(t.pi0)), tg.out_node(t.g1));
  EXPECT_FALSE(spt.parent(spt.root).valid());
}

TEST_F(SptFixture, ParentPinsMatchNetlist) {
  Spt spt = extract_eps_spt(tg, tg.sink_node(t.po0), 0.0);
  // g1 drives pin 0 of g3; g2 drives pin 1.
  EXPECT_EQ(spt.parent_pin(tg.out_node(t.g1)), 0);
  EXPECT_EQ(spt.parent_pin(tg.out_node(t.g2)), 1);
}

TEST_F(SptFixture, DistToRootIsTreePathDelay) {
  Spt spt = extract_eps_spt(tg, tg.sink_node(t.po0), 0.0);
  // g3 -> po0: wire 3 + pad 0.5.
  EXPECT_DOUBLE_EQ(spt.dist_to_root(tg.out_node(t.g3)), 3.5);
  // g1 -> g3 -> po0: (2 + 1) + 3.5.
  EXPECT_DOUBLE_EQ(spt.dist_to_root(tg.out_node(t.g1)), 6.5);
}

TEST_F(SptFixture, NodesOrderedParentsFirst) {
  Spt spt = extract_eps_spt(tg, tg.sink_node(t.po0), 2.0);
  std::unordered_map<TimingNodeId, std::size_t> pos;
  for (std::size_t i = 0; i < spt.nodes.size(); ++i) pos[spt.nodes[i]] = i;
  for (TimingNodeId n : spt.nodes) {
    if (n == spt.root) continue;
    EXPECT_LT(pos.at(spt.parent(n)), pos.at(n));
  }
}

TEST_F(SptFixture, EpsilonWidensTheTree) {
  // Make the two branches asymmetric: shorten the pi1 -> g2 -> g3 branch so
  // its slowest path is 8.0 vs the critical 9.0, dropping it off the
  // eps = 0 tree.
  t.pl->place(t.pi1, {0, 2});
  t.pl->place(t.g2, {1, 2});
  tg.run_sta();
  Spt tight = extract_eps_spt(tg, tg.sink_node(t.po0), 0.0);
  EXPECT_TRUE(tight.contains(tg.out_node(t.g1)));
  EXPECT_FALSE(tight.contains(tg.out_node(t.g2)));

  Spt wide = extract_eps_spt(tg, tg.sink_node(t.po0), 1.5);
  EXPECT_TRUE(wide.contains(tg.out_node(t.g2)));
  EXPECT_GE(wide.size(), tight.size());
}

TEST_F(SptFixture, MembershipThreshold) {
  t.pl->place(t.pi1, {0, 2});
  t.pl->place(t.g2, {1, 2});
  tg.run_sta();
  // g2's slowest path through po0 is 8.0 vs critical 9.0; eps just below
  // 1.0 must exclude it, eps just above must include it.
  Spt below = extract_eps_spt(tg, tg.sink_node(t.po0), 0.99);
  EXPECT_FALSE(below.contains(tg.out_node(t.g2)));
  Spt above = extract_eps_spt(tg, tg.sink_node(t.po0), 1.01);
  EXPECT_TRUE(above.contains(tg.out_node(t.g2)));
}

TEST_F(SptFixture, RootOnlyForSinkWithoutCone) {
  // po1's cone is just the flip-flop Q.
  Spt spt = extract_eps_spt(tg, tg.sink_node(t.po1), 0.0);
  EXPECT_TRUE(spt.contains(tg.out_node(t.r)));
  EXPECT_EQ(spt.size(), 2u);
}

TEST_F(SptFixture, ChildrenInverseOfParent) {
  Spt spt = extract_eps_spt(tg, tg.sink_node(t.po0), 2.0);
  for (TimingNodeId n : spt.nodes) {
    if (n == spt.root) continue;
    auto kids = spt.children(spt.parent(n));
    EXPECT_NE(std::find(kids.begin(), kids.end(), n), kids.end());
  }
  // And the other way: every listed child points back at its parent.
  for (TimingNodeId p : spt.nodes)
    for (TimingNodeId kid : spt.children(p)) EXPECT_EQ(spt.parent(kid), p);
}

TEST_F(SptFixture, LegacyExtractionIsIdentical) {
  for (double eps : {0.0, 0.99, 1.5, 2.0}) {
    Spt flat = extract_eps_spt(tg, tg.sink_node(t.po0), eps);
    Spt legacy = extract_eps_spt_legacy(tg, tg.sink_node(t.po0), eps);
    ASSERT_EQ(flat.nodes, legacy.nodes);
    for (TimingNodeId n : flat.nodes) {
      EXPECT_EQ(flat.parent(n), legacy.parent(n));
      EXPECT_EQ(flat.parent_pin(n), legacy.parent_pin(n));
      EXPECT_EQ(flat.dist_to_root(n), legacy.dist_to_root(n));
    }
  }
}

TEST(SptGenerated, TreePropertyOnGeneratedCircuit) {
  CircuitSpec spec;
  spec.num_logic = 300;
  spec.num_inputs = 12;
  spec.num_outputs = 12;
  spec.registered_fraction = 0.25;
  spec.seed = 7;
  Netlist nl = generate_circuit(spec);
  FpgaGrid grid(FpgaGrid::min_grid_for(nl.num_logic(),
                                       nl.num_input_pads() + nl.num_output_pads()));
  Placement pl(nl, grid);
  std::size_t li = 0;
  std::size_t ii = 0;
  auto logic = grid.logic_locations();
  auto io = grid.io_locations();
  for (CellId c : nl.live_cells()) {
    if (nl.cell(c).kind == CellKind::kLogic)
      pl.place(c, logic[li++]);
    else
      pl.place(c, io[ii++ % io.size()]);
  }
  LinearDelayModel dm;
  TimingGraph tg(nl, pl, dm);

  for (double eps : {0.0, 2.0, 8.0}) {
    Spt spt = extract_eps_spt(tg, tg.critical_sink(), eps);
    // Every non-root member has exactly one parent, which is a member, and
    // membership respects the eps threshold.
    for (TimingNodeId n : spt.nodes) {
      if (n == spt.root) continue;
      ASSERT_TRUE(spt.parent(n).valid());
      EXPECT_TRUE(spt.contains(spt.parent(n)));
      double through = tg.arrival(n) + spt.dist_to_root(n);
      EXPECT_GE(through, tg.arrival(spt.root) - eps - 1e-9);
      EXPECT_LE(through, tg.arrival(spt.root) + 1e-9);
    }
    // The root's slowest member path equals the root arrival (eps-SPT always
    // contains the critical path).
    double max_through = 0;
    for (TimingNodeId n : spt.nodes)
      max_through = std::max(max_through, tg.arrival(n) + spt.dist_to_root(n));
    EXPECT_NEAR(max_through, tg.arrival(spt.root), 1e-9);
  }
}

}  // namespace
}  // namespace repro
