#include <gtest/gtest.h>

#include <sstream>

#include "flow/svg_report.h"
#include "test_helpers.h"

namespace repro {
namespace {

using testing::TinyPlaced;

TEST(SvgReport, ProducesWellFormedDocument) {
  TinyPlaced t;
  std::ostringstream out;
  write_placement_svg(*t.pl, t.dm, out);
  const std::string svg = out.str();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One rect per live cell plus background/outline.
  std::size_t rects = 0;
  for (std::size_t pos = 0; (pos = svg.find("<rect", pos)) != std::string::npos;
       ++pos)
    ++rects;
  EXPECT_GE(rects, t.nl.num_live_cells());
  // Critical path polyline present.
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
}

TEST(SvgReport, MarksReplicas) {
  TinyPlaced t;
  CellId rep = t.nl.replicate_cell(t.g3);
  t.nl.reassign_input(t.po0, 0, t.nl.cell(rep).output);
  t.pl->place(rep, {2, 3});
  std::ostringstream out;
  write_placement_svg(*t.pl, t.dm, out);
  // Replicated cells get the blue outline.
  EXPECT_NE(out.str().find("#0050d0"), std::string::npos);
}

TEST(SvgReport, TitlesCarryCellNames) {
  TinyPlaced t;
  std::ostringstream out;
  write_placement_svg(*t.pl, t.dm, out);
  EXPECT_NE(out.str().find("<title>g3"), std::string::npos);
}

}  // namespace
}  // namespace repro
