#pragma once

#include <memory>

#include "arch/delay_model.h"
#include "arch/fpga_grid.h"
#include "netlist/netlist.h"
#include "place/placement.h"

namespace repro::testing {

/// Hand-built placed circuit used across the timing/SPT/replication tests:
///
///   pi0 --> g1 --> g3 --> po0
///   pi1 --> g2 -/     \-> r (registered) --> po1
///           g2 ----------> g3 (second pin)   [reconvergence at g3? no:
///                                             g1,g2 both feed g3]
///
/// Layout on a 4x4 logic array chosen so that distances are easy to reason
/// about in tests.
struct TinyPlaced {
  Netlist nl;
  std::unique_ptr<FpgaGrid> grid;
  std::unique_ptr<Placement> pl;
  LinearDelayModel dm;

  CellId pi0, pi1, g1, g2, g3, r, po0, po1;

  TinyPlaced() {
    pi0 = nl.add_input_pad("pi0");
    pi1 = nl.add_input_pad("pi1");
    g1 = nl.add_logic("g1", {nl.cell(pi0).output}, 0b10, false);
    g2 = nl.add_logic("g2", {nl.cell(pi1).output}, 0b10, false);
    g3 = nl.add_logic("g3", {nl.cell(g1).output, nl.cell(g2).output}, 0b0110,
                      false);
    r = nl.add_logic("r", {nl.cell(g3).output}, 0b10, true);
    po0 = nl.add_output_pad("po0");
    nl.connect(nl.cell(g3).output, po0, 0);
    po1 = nl.add_output_pad("po1");
    nl.connect(nl.cell(r).output, po1, 0);

    grid = std::make_unique<FpgaGrid>(4, 2);
    pl = std::make_unique<Placement>(nl, *grid);
    pl->place(pi0, {0, 1});
    pl->place(pi1, {0, 3});
    pl->place(g1, {1, 1});
    pl->place(g2, {1, 3});
    pl->place(g3, {2, 2});
    pl->place(r, {3, 2});
    pl->place(po0, {3, 0});
    pl->place(po1, {5, 2});

    dm.wire_delay_per_unit = 1.0;
    dm.logic_delay = 1.0;
    dm.io_delay = 0.5;
    dm.ff_delay = 0.25;
  }
};

}  // namespace repro::testing
