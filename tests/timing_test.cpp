#include <gtest/gtest.h>

#include "gen/circuit_gen.h"
#include "place/placement.h"
#include "test_helpers.h"
#include "timing/timing_graph.h"

namespace repro {
namespace {

using testing::TinyPlaced;

// Hand-computed reference values for TinyPlaced (wire 1.0/unit, LUT 1.0,
// pad 0.5, FF clk-to-q 0.25):
//   arr(g1) = 0.5 + 1 + 1 = 2.5            arr(g2) = 2.5
//   arr(g3) = 2.5 + 2 + 1 = 5.5
//   arr(r.D) = 5.5 + 1 + 1 = 7.5           arr(po0) = 5.5 + 3 + 0.5 = 9.0
//   arr(po1) = 0.25 + 2 + 0.5 = 2.75
class TimingFixture : public ::testing::Test {
 protected:
  TinyPlaced t;
  TimingGraph tg{t.nl, *t.pl, t.dm};
};

TEST_F(TimingFixture, NodeStructure) {
  // 2 PIs + 3 comb + registered (2 nodes) + 2 POs = 9 nodes.
  EXPECT_EQ(tg.num_nodes(), 9u);
  EXPECT_TRUE(tg.out_node(t.g3).valid());
  EXPECT_FALSE(tg.sink_node(t.g3).valid());
  EXPECT_TRUE(tg.sink_node(t.r).valid());
  EXPECT_TRUE(tg.out_node(t.r).valid());
  EXPECT_FALSE(tg.out_node(t.po0).valid());
  EXPECT_EQ(tg.sinks().size(), 3u);  // r.D, po0, po1
}

TEST_F(TimingFixture, SourceArrivals) {
  EXPECT_DOUBLE_EQ(tg.arrival(tg.out_node(t.pi0)), 0.5);
  EXPECT_DOUBLE_EQ(tg.arrival(tg.out_node(t.r)), 0.25);
}

TEST_F(TimingFixture, CombArrivals) {
  EXPECT_DOUBLE_EQ(tg.arrival(tg.out_node(t.g1)), 2.5);
  EXPECT_DOUBLE_EQ(tg.arrival(tg.out_node(t.g2)), 2.5);
  EXPECT_DOUBLE_EQ(tg.arrival(tg.out_node(t.g3)), 5.5);
}

TEST_F(TimingFixture, SinkArrivals) {
  EXPECT_DOUBLE_EQ(tg.arrival(tg.sink_node(t.r)), 7.5);
  EXPECT_DOUBLE_EQ(tg.arrival(tg.sink_node(t.po0)), 9.0);
  EXPECT_DOUBLE_EQ(tg.arrival(tg.sink_node(t.po1)), 2.75);
}

TEST_F(TimingFixture, CriticalDelayAndSink) {
  EXPECT_DOUBLE_EQ(tg.critical_delay(), 9.0);
  EXPECT_EQ(tg.node(tg.critical_sink()).cell, t.po0);
}

TEST_F(TimingFixture, Downstream) {
  EXPECT_DOUBLE_EQ(tg.downstream(tg.out_node(t.g3)), 3.5);  // to po0
  EXPECT_DOUBLE_EQ(tg.downstream(tg.out_node(t.g1)), 6.5);
  EXPECT_DOUBLE_EQ(tg.downstream(tg.sink_node(t.po0)), 0.0);
}

TEST_F(TimingFixture, SlackAndRequired) {
  // po0 is critical: zero slack along its path.
  EXPECT_NEAR(tg.slack(tg.sink_node(t.po0)), 0.0, 1e-12);
  EXPECT_NEAR(tg.slack(tg.out_node(t.g3)), 0.0, 1e-12);
  // po1 has plenty of slack.
  EXPECT_NEAR(tg.slack(tg.sink_node(t.po1)), 9.0 - 2.75, 1e-12);
}

TEST_F(TimingFixture, SlowestPathThrough) {
  EXPECT_DOUBLE_EQ(tg.slowest_path_through(tg.out_node(t.g3)), 9.0);
  EXPECT_DOUBLE_EQ(tg.slowest_path_through_cell(t.g3), 9.0);
  // r participates in two paths; the slow side is its D arrival (7.5).
  EXPECT_DOUBLE_EQ(tg.slowest_path_through_cell(t.r), 7.5);
}

TEST_F(TimingFixture, EdgeCriticality) {
  // Find the g3 -> po0 edge; it lies on the critical path.
  bool checked = false;
  for (std::size_t e = 0; e < tg.num_edges(); ++e) {
    if (tg.edge(e).from == tg.out_node(t.g3) &&
        tg.edge(e).to == tg.sink_node(t.po0)) {
      EXPECT_NEAR(tg.edge_criticality(e), 1.0, 1e-12);
      EXPECT_NEAR(tg.edge_slack(e), 0.0, 1e-12);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST_F(TimingFixture, CriticalPathEndpoints) {
  auto path = tg.critical_path();
  ASSERT_GE(path.size(), 3u);
  EXPECT_EQ(tg.node(path.front()).kind, TimingNodeKind::kSource);
  EXPECT_EQ(tg.node(path.back()).cell, t.po0);
  // Path arrivals must be nondecreasing.
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    EXPECT_LE(tg.arrival(path[i]), tg.arrival(path[i + 1]) + 1e-12);
}

TEST_F(TimingFixture, StaRespondsToMoves) {
  t.pl->place(t.g3, {3, 1});  // closer to po0
  tg.run_sta();
  // arr(g3) = 2.5 + max(d(g1,(3,1))=2, d(g2,(3,1))=4) + 1 = 7.5
  EXPECT_DOUBLE_EQ(tg.arrival(tg.out_node(t.g3)), 7.5);
  // po0: 7.5 + d((3,1),(3,0))=1 + 0.5 = 9.0
  EXPECT_DOUBLE_EQ(tg.arrival(tg.sink_node(t.po0)), 9.0);
}

TEST_F(TimingFixture, WireLengthOverride) {
  // Pretend routing doubled every wire.
  tg.set_wire_length_override([](CellId, int, int len) { return 2 * len; });
  tg.run_sta();
  // po0 path: 0.5 + (2*1+1) + (2*2+1) + (2*3+0.5) = 15.0
  EXPECT_DOUBLE_EQ(tg.critical_delay(), 15.0);
  tg.set_wire_length_override(nullptr);
  tg.run_sta();
  EXPECT_DOUBLE_EQ(tg.critical_delay(), 9.0);
}

TEST(TimingGraph, CycleDetection) {
  Netlist nl;
  CellId g1 = nl.add_logic("g1", {NetId::invalid()}, 0b10, false);
  CellId g2 = nl.add_logic("g2", {nl.cell(g1).output}, 0b10, false);
  nl.connect(nl.cell(g2).output, g1, 0);
  FpgaGrid grid(2);
  Placement pl(nl, grid);
  pl.place(g1, {1, 1});
  pl.place(g2, {2, 1});
  LinearDelayModel dm;
  EXPECT_THROW(TimingGraph(nl, pl, dm), std::runtime_error);
}

TEST(TimingGraph, RegisteredCellBreaksCycle) {
  Netlist nl;
  CellId r = nl.add_logic("r", {NetId::invalid()}, 0b01, true);
  nl.connect(nl.cell(r).output, r, 0);  // T flip-flop self-loop
  CellId po = nl.add_output_pad("po");
  nl.connect(nl.cell(r).output, po, 0);
  FpgaGrid grid(2);
  Placement pl(nl, grid);
  pl.place(r, {1, 1});
  pl.place(po, {0, 1});
  LinearDelayModel dm;
  TimingGraph tg(nl, pl, dm);
  EXPECT_GT(tg.critical_delay(), 0.0);
}

TEST(TimingGraph, GeneratedCircuitIsAcyclicAndFinite) {
  CircuitSpec spec;
  spec.num_logic = 200;
  spec.num_inputs = 10;
  spec.num_outputs = 10;
  spec.registered_fraction = 0.3;
  spec.seed = 42;
  Netlist nl = generate_circuit(spec);
  FpgaGrid grid(FpgaGrid::min_grid_for(nl.num_logic(),
                                       nl.num_input_pads() + nl.num_output_pads()));
  Placement pl(nl, grid);
  // Deterministic diagonal-ish placement.
  std::size_t li = 0;
  std::size_t ii = 0;
  auto logic = grid.logic_locations();
  auto io = grid.io_locations();
  for (CellId c : nl.live_cells()) {
    if (nl.cell(c).kind == CellKind::kLogic)
      pl.place(c, logic[li++ % logic.size()]);
    else
      pl.place(c, io[ii++ % io.size()]);
  }
  LinearDelayModel dm;
  TimingGraph tg(nl, pl, dm);
  EXPECT_GT(tg.critical_delay(), 0.0);
  EXPECT_LT(tg.critical_delay(), 1e4);
}

}  // namespace
}  // namespace repro
