#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <future>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/geometry.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strfmt.h"
#include "util/thread_pool.h"

namespace repro {
namespace {

TEST(Strfmt, FormatDouble17gRoundTripsBitExactly) {
  // %.17g prints enough digits that strtod() restores the exact bit pattern;
  // every deterministic text emitter (JSONL writer, bench JSON) relies on it.
  const double values[] = {0.0,
                           1.0,
                           0.1 + 0.2,
                           1.0 / 3.0,
                           24.349999999999998,
                           1e-300,
                           1e300,
                           -12345.678901234567,
                           5e-324 /* min subnormal */};
  for (double v : values) {
    const std::string text = format_double_17g(v);
    const double back = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(back, v) << text;
  }
  // Negative zero keeps its sign through the round trip.
  const double nz = std::strtod(format_double_17g(-0.0).c_str(), nullptr);
  EXPECT_TRUE(std::signbit(nz));
}

TEST(Ids, DefaultIsInvalid) {
  CellId c;
  EXPECT_FALSE(c.valid());
  EXPECT_EQ(c, CellId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  CellId c(42);
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.value(), 42);
  EXPECT_EQ(c.index(), 42u);
}

TEST(Ids, DistinctTagTypesDoNotMix) {
  static_assert(!std::is_same_v<CellId, NetId>);
  static_assert(!std::is_convertible_v<CellId, NetId>);
}

TEST(Ids, Ordering) {
  EXPECT_LT(CellId(1), CellId(2));
  EXPECT_LT(CellId::invalid(), CellId(0));
}

TEST(Ids, Hashable) {
  std::unordered_set<CellId> s;
  s.insert(CellId(1));
  s.insert(CellId(1));
  s.insert(CellId(2));
  EXPECT_EQ(s.size(), 2u);
}

TEST(Geometry, Manhattan) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
  EXPECT_EQ(manhattan({5, 5}, {5, 5}), 0);
  EXPECT_EQ(manhattan({-2, 1}, {2, -1}), 6);
}

TEST(Geometry, RectEmptyAndInclude) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.half_perimeter(), 0);
  r.include({3, 4});
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.width(), 1);
  EXPECT_EQ(r.height(), 1);
  r.include({1, 7});
  EXPECT_EQ(r.xmin, 1);
  EXPECT_EQ(r.xmax, 3);
  EXPECT_EQ(r.ymin, 4);
  EXPECT_EQ(r.ymax, 7);
  EXPECT_EQ(r.half_perimeter(), 2 + 3);
}

TEST(Geometry, RectContains) {
  Rect r{1, 1, 4, 4};
  EXPECT_TRUE(r.contains({1, 1}));
  EXPECT_TRUE(r.contains({4, 4}));
  EXPECT_FALSE(r.contains({0, 2}));
  EXPECT_FALSE(r.contains({5, 2}));
}

TEST(Geometry, RectInflateClips) {
  Rect r{2, 2, 3, 3};
  Rect g = r.inflated(5, 6, 4);
  EXPECT_EQ(g.xmin, 0);
  EXPECT_EQ(g.ymin, 0);
  EXPECT_EQ(g.xmax, 6);
  EXPECT_EQ(g.ymax, 4);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(13), 13u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusive) {
  Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    int v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng rng(3);
  std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_weighted(w), 1u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Stats, AccumulatorBasics) {
  StatAccumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 1.25, 1e-12);
}

TEST(Stats, EmptyAccumulatorIsZero) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(Stats, MeanAndGeomean) {
  EXPECT_DOUBLE_EQ(mean_of({2.0, 8.0}), 5.0);
  EXPECT_NEAR(geomean_of({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_EQ(mean_of({}), 0.0);
}

TEST(Stats, Fmt) {
  EXPECT_EQ(fmt(1.23456, 3), "1.235");
  EXPECT_EQ(fmt(2.0, 1), "2.0");
}

// Regression stress for the lost-wakeup race in the pool's park/notify path
// (push_task and parallel_for must lock idle_mu_ before notifying): a worker
// that has just evaluated its wait predicate as false must still observe a
// concurrently pushed task. Single-task bursts against a freshly woken or
// parking pool maximize that window; the observable failure is a hang (a
// worker sleeping through the notify while its future never resolves), which
// the test TIMEOUT turns into a failure. Run under TSan in CI.
TEST(ThreadPool, RapidSubmitDrainShutdownCycles) {
  for (int cycle = 0; cycle < 150; ++cycle) {
    ThreadPool pool(3);
    // 1-task burst on a pool whose workers are about to park.
    auto single = pool.submit([cycle] { return cycle; });
    ASSERT_EQ(single.get(), cycle);

    // Drain a small burst, then immediately go quiet so workers re-park;
    // repeat to cycle park -> wake -> park within one pool lifetime.
    for (int burst = 0; burst < 3; ++burst) {
      std::atomic<int> sum{0};
      std::vector<std::future<void>> fs;
      fs.reserve(4);
      for (int i = 0; i < 4; ++i)
        fs.push_back(pool.submit(
            [&sum] { sum.fetch_add(1, std::memory_order_relaxed); }));
      for (auto& f : fs) f.get();
      ASSERT_EQ(sum.load(), 4);
    }
    // Pool destruction: shutdown racing with workers that may be parking.
  }
}

TEST(ThreadPool, ParallelForUnderRepeatedTinyRanges) {
  ThreadPool pool(4);
  for (int round = 0; round < 100; ++round) {
    std::atomic<std::size_t> hits{0};
    // n == 1 makes the caller race the notify path with a single chunk.
    const std::size_t n = 1 + static_cast<std::size_t>(round % 3);
    pool.parallel_for(n, 1, [&](std::size_t) {
      hits.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(hits.load(), n);
  }
}

}  // namespace
}  // namespace repro
