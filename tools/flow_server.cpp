// Batch job server for place -> replicate -> route runs, plus the ECO
// serving mode (long-lived incremental sessions, DESIGN.md §11).
//
// Reads one JSON object per line. Lines WITHOUT an "op" key are batch job
// specs (see examples/flow_jobs.jsonl): they run over a thread pool with
// per-stage timeouts, bounded retry and stage-boundary checkpointing. Lines
// WITH an "op" key are session ops (see examples/eco_session.jsonl):
// open_session / apply_delta / query / close_session against long-lived
// incremental sessions. The two kinds interleave freely — pending batch jobs
// are flushed before each session op, and the output has one result line per
// input line, in input order. A failing job or a rejected delta is reported
// in its result line; the process still exits 0 as long as the batch ran.
//
//   flow_server --jobs batch.jsonl --out results.jsonl \
//               --checkpoint-dir ckpt --threads 4 --job-timeout 60
//   flow_server --jobs batch.jsonl --out results.jsonl --resume ckpt
//   flow_server --jobs session.jsonl --out results.jsonl --sessions-dir eco
//
// SIGINT/SIGTERM shut down gracefully: in-flight jobs unwind at their next
// cancellation point (CHECKPOINTED; their snapshots are on disk), open
// sessions are persisted, results produced so far are flushed, exit 0.
//
// Exit codes: 0 batch ran (per-job status is in the output), 2 bad usage or
// unreadable job file, 42 simulated crash (--crash-after-checkpoints /
// --crash-after-deltas, CI resume tests).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "dist/coordinator.h"
#include "dist/worker.h"
#include "eco/session_manager.h"
#include "serve/jsonl.h"
#include "serve/service.h"
#include "util/log.h"
#include "util/socket.h"

using namespace repro;

namespace {

std::atomic<bool> g_shutdown{false};

void handle_signal(int) { g_shutdown.store(true, std::memory_order_relaxed); }

struct Args {
  std::string jobs;  // "" or "-" = stdin
  std::string out;   // "" or "-" = stdout
  std::string checkpoint_dir;
  std::string sessions_dir;
  bool resume = false;
  int threads = 1;
  int engine_threads = 1;
  double job_timeout = 0;
  int max_retries = 0;
  bool stable = false;
  bool quiet = false;
  bool eco_cold_audit = false;
  int crash_after_checkpoints = 0;
  int crash_after_deltas = 0;
  std::string audit;   // "" = leave to REPRO_AUDIT / config default
  std::string placer;  // "" = leave to REPRO_PLACER / config default

  // Distributed mode (src/dist): coordinator side.
  int workers = -1;     // >= 0 = coordinator mode, spawning N workers
  std::string listen;   // "" = default unix socket under /tmp
  std::vector<std::string> chaos;  // "SLOT:FAULTSPEC" per spawned worker
  double heartbeat_timeout = 1.5;
  double degrade_grace = 0.75;
  int respawn_budget = 4;
  // Worker side.
  bool worker_mode = false;
  std::string connect;
  std::string fault;
};

int usage() {
  std::fprintf(stderr,
               "usage: flow_server [options]\n"
               "  --jobs FILE          JSONL job/session-op file (default: stdin)\n"
               "  --out FILE           JSONL results file (default: stdout)\n"
               "  --checkpoint-dir D   write stage-boundary snapshots into D\n"
               "  --resume D           resume from snapshots in D (implies\n"
               "                       --checkpoint-dir D)\n"
               "  --sessions-dir D     persist ECO sessions into D as .ecs files;\n"
               "                       an open_session whose id has a file there\n"
               "                       resumes it mid-stream\n"
               "  --threads N          concurrent jobs (0 = hardware, default 1)\n"
               "  --engine-threads N   speculation threads per job (default 1)\n"
               "  --job-timeout S      per-stage wall-clock timeout in seconds\n"
               "  --max-retries N      retries for failed (not timed-out) jobs\n"
               "  --stable             omit wall-clock fields from results so\n"
               "                       resumed and straight runs compare equal\n"
               "  --placer BACKEND     default placement backend for jobs that\n"
               "                       don't set one: annealer | analytic |\n"
               "                       hybrid (or REPRO_PLACER)\n"
               "  --audit LEVEL        invariant auditing after every stage and\n"
               "                       every applied delta: off | stage |\n"
               "                       paranoid (default off); audit-failing\n"
               "                       jobs are quarantined\n"
               "  --eco-cold-audit     on close_session, replay the full delta\n"
               "                       journal against a cold rebuild and fail\n"
               "                       the close on any disagreement\n"
               "  --workers N          distributed mode: spawn N worker\n"
               "                       processes and run batch jobs through\n"
               "                       the dist coordinator (0 = listen for\n"
               "                       externally started workers only)\n"
               "  --listen ADDR        coordinator endpoint, unix:<path> or\n"
               "                       tcp:<port> (default: a unix socket\n"
               "                       under /tmp; tcp:0 = ephemeral port)\n"
               "  --chaos SLOT:SPEC    fault-injection plan for spawned worker\n"
               "                       SLOT (repeatable; see --fault)\n"
               "  --heartbeat-timeout S  declare a silent worker dead after S\n"
               "                       seconds (default 1.5)\n"
               "  --degrade-grace S    with zero workers, wait S seconds then\n"
               "                       run jobs in-process (default 0.75)\n"
               "  --respawn-budget N   replacement workers to spawn after\n"
               "                       deaths (default 4)\n"
               "  --worker             run as a worker process instead of a\n"
               "                       server; requires --connect\n"
               "  --connect ADDR       coordinator endpoint to join\n"
               "  --fault SPEC         worker fault injection, comma-separated\n"
               "                       hooks: drop_connection_after_frames=N,\n"
               "                       corrupt_frame=N, hang_worker=STAGE[:k],\n"
               "                       kill_worker_at_stage=STAGE[:k]\n"
               "  --quiet              no stats summary on stderr\n"
               "  --crash-after-checkpoints N\n"
               "                       CI hook: stop after N checkpoints and\n"
               "                       exit 42 without writing results\n"
               "  --crash-after-deltas N\n"
               "                       CI hook: exit 42 after N applied deltas\n"
               "                       have been persisted, without writing\n"
               "                       results\n"
               "Env: REPRO_SERVE_THREADS, REPRO_SERVE_JOB_TIMEOUT,\n"
               "     REPRO_SERVE_MAX_RETRIES, REPRO_AUDIT (flags win).\n");
  return 2;
}

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flow_server: missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* arg = argv[i];
    const char* v = nullptr;
    if (!std::strcmp(arg, "--jobs")) {
      if (!(v = need(arg))) return false;
      a.jobs = v;
    } else if (!std::strcmp(arg, "--out")) {
      if (!(v = need(arg))) return false;
      a.out = v;
    } else if (!std::strcmp(arg, "--checkpoint-dir")) {
      if (!(v = need(arg))) return false;
      a.checkpoint_dir = v;
    } else if (!std::strcmp(arg, "--resume")) {
      if (!(v = need(arg))) return false;
      a.checkpoint_dir = v;
      a.resume = true;
    } else if (!std::strcmp(arg, "--sessions-dir")) {
      if (!(v = need(arg))) return false;
      a.sessions_dir = v;
    } else if (!std::strcmp(arg, "--threads")) {
      if (!(v = need(arg))) return false;
      a.threads = std::atoi(v);
    } else if (!std::strcmp(arg, "--engine-threads")) {
      if (!(v = need(arg))) return false;
      a.engine_threads = std::atoi(v);
    } else if (!std::strcmp(arg, "--job-timeout")) {
      if (!(v = need(arg))) return false;
      a.job_timeout = std::atof(v);
    } else if (!std::strcmp(arg, "--max-retries")) {
      if (!(v = need(arg))) return false;
      a.max_retries = std::atoi(v);
    } else if (!std::strcmp(arg, "--placer")) {
      if (!(v = need(arg))) return false;
      a.placer = v;
    } else if (!std::strcmp(arg, "--audit")) {
      if (!(v = need(arg))) return false;
      a.audit = v;
    } else if (!std::strcmp(arg, "--stable")) {
      a.stable = true;
    } else if (!std::strcmp(arg, "--quiet")) {
      a.quiet = true;
    } else if (!std::strcmp(arg, "--eco-cold-audit")) {
      a.eco_cold_audit = true;
    } else if (!std::strcmp(arg, "--workers")) {
      if (!(v = need(arg))) return false;
      a.workers = std::atoi(v);
    } else if (!std::strcmp(arg, "--listen")) {
      if (!(v = need(arg))) return false;
      a.listen = v;
    } else if (!std::strcmp(arg, "--chaos")) {
      if (!(v = need(arg))) return false;
      a.chaos.push_back(v);
    } else if (!std::strcmp(arg, "--heartbeat-timeout")) {
      if (!(v = need(arg))) return false;
      a.heartbeat_timeout = std::atof(v);
    } else if (!std::strcmp(arg, "--degrade-grace")) {
      if (!(v = need(arg))) return false;
      a.degrade_grace = std::atof(v);
    } else if (!std::strcmp(arg, "--respawn-budget")) {
      if (!(v = need(arg))) return false;
      a.respawn_budget = std::atoi(v);
    } else if (!std::strcmp(arg, "--worker")) {
      a.worker_mode = true;
    } else if (!std::strcmp(arg, "--connect")) {
      if (!(v = need(arg))) return false;
      a.connect = v;
    } else if (!std::strcmp(arg, "--fault")) {
      if (!(v = need(arg))) return false;
      a.fault = v;
    } else if (!std::strcmp(arg, "--crash-after-checkpoints")) {
      if (!(v = need(arg))) return false;
      a.crash_after_checkpoints = std::atoi(v);
    } else if (!std::strcmp(arg, "--crash-after-deltas")) {
      if (!(v = need(arg))) return false;
      a.crash_after_deltas = std::atoi(v);
    } else {
      std::fprintf(stderr, "flow_server: unknown option '%s'\n", arg);
      return false;
    }
  }
  return true;
}

/// One classified input line: a batch job spec or a raw session-op line
/// (session ops are validated when handled — a bad op is an error result
/// line, not a dead server).
struct InputLine {
  bool is_op = false;
  JobSpec spec;
  std::string raw;
};

/// Service options shared by every mode. Worker processes rebuild these
/// from the same environment + forwarded flags as the coordinator, which is
/// what keeps remote attempts bit-identical to local ones.
int build_service_options(const Args& args, ServiceOptions& sopt) {
  sopt = service_options_from_env();
  sopt.base = config_from_env();
  if (!args.audit.empty() && !parse_audit_level(args.audit, &sopt.base.audit)) {
    std::fprintf(stderr, "flow_server: bad --audit level '%s'\n",
                 args.audit.c_str());
    return usage();
  }
  if (!args.placer.empty() &&
      !parse_placer_backend(args.placer, &sopt.base.placer)) {
    std::fprintf(stderr, "flow_server: bad --placer backend '%s'\n",
                 args.placer.c_str());
    return usage();
  }
  if (args.threads >= 0) sopt.threads = args.threads;
  sopt.engine_threads = args.engine_threads;
  if (args.job_timeout > 0) sopt.job_timeout_seconds = args.job_timeout;
  if (args.max_retries > 0) sopt.max_retries = args.max_retries;
  sopt.checkpoint_dir = args.checkpoint_dir;
  sopt.resume = args.resume;
  sopt.stop_after_checkpoints = args.crash_after_checkpoints;
  return 0;
}

std::string self_exe_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

int run_worker_mode(const Args& args) {
  if (args.connect.empty()) {
    std::fprintf(stderr, "flow_server: --worker requires --connect\n");
    return usage();
  }
  WorkerOptions wopt;
  if (const int rc = build_service_options(args, wopt.service)) return rc;
  // A worker never touches disk: checkpoints stream to the coordinator.
  wopt.service.checkpoint_dir.clear();
  wopt.service.resume = false;
  std::string err;
  if (!SocketAddr::parse(args.connect, &wopt.connect, &err)) {
    std::fprintf(stderr, "flow_server: bad --connect: %s\n", err.c_str());
    return usage();
  }
  if (!args.fault.empty() &&
      !parse_fault_plan(args.fault, &wopt.fault, &err)) {
    std::fprintf(stderr, "flow_server: bad --fault: %s\n", err.c_str());
    return usage();
  }
  wopt.process_mode = true;
  return run_worker(wopt, &g_shutdown);
}

/// Builds the coordinator for --workers/--listen mode. Returns nullptr +
/// nonzero *rc on a bad flag.
std::unique_ptr<Coordinator> make_coordinator(const Args& args,
                                              const ServiceOptions& sopt,
                                              const char* argv0, int* rc) {
  CoordinatorOptions copt;
  copt.service = sopt;
  const std::string listen_str =
      args.listen.empty()
          ? "unix:/tmp/flow_server." + std::to_string(::getpid()) + ".sock"
          : args.listen;
  std::string err;
  if (!SocketAddr::parse(listen_str, &copt.listen, &err)) {
    std::fprintf(stderr, "flow_server: bad --listen: %s\n", err.c_str());
    *rc = usage();
    return nullptr;
  }
  copt.spawn_workers = std::max(args.workers, 0);
  copt.worker_exe = self_exe_path(argv0);
  copt.heartbeat_timeout_s = args.heartbeat_timeout;
  copt.degrade_grace_s = args.degrade_grace;
  copt.respawn_budget = args.respawn_budget;
  // Forward every flag that changes results so spawned workers compute the
  // same bits (environment variables are inherited via exec).
  if (!args.audit.empty()) {
    copt.worker_args.push_back("--audit");
    copt.worker_args.push_back(args.audit);
  }
  if (!args.placer.empty()) {
    copt.worker_args.push_back("--placer");
    copt.worker_args.push_back(args.placer);
  }
  copt.worker_args.push_back("--engine-threads");
  copt.worker_args.push_back(std::to_string(args.engine_threads));
  if (args.job_timeout > 0) {
    copt.worker_args.push_back("--job-timeout");
    copt.worker_args.push_back(std::to_string(args.job_timeout));
  }
  copt.worker_faults.resize(static_cast<std::size_t>(copt.spawn_workers));
  for (const std::string& c : args.chaos) {
    const std::size_t colon = c.find(':');
    const int slot = colon == std::string::npos ? -1
                                                : std::atoi(c.substr(0, colon).c_str());
    if (colon == std::string::npos || slot < 0 ||
        slot >= copt.spawn_workers) {
      std::fprintf(stderr,
                   "flow_server: bad --chaos '%s' (want SLOT:FAULTSPEC with "
                   "SLOT < --workers)\n",
                   c.c_str());
      *rc = usage();
      return nullptr;
    }
    FaultPlan check;
    const std::string spec = c.substr(colon + 1);
    if (!parse_fault_plan(spec, &check, &err)) {
      std::fprintf(stderr, "flow_server: bad --chaos '%s': %s\n", c.c_str(),
                   err.c_str());
      *rc = usage();
      return nullptr;
    }
    copt.worker_faults[static_cast<std::size_t>(slot)] = spec;
  }
  *rc = 0;
  return std::make_unique<Coordinator>(copt);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  // A consumer closing the result pipe (head, a dying coordinator) must be
  // a clean shutdown with a diagnostic, not a silent SIGPIPE death.
  std::signal(SIGPIPE, SIG_IGN);

  if (args.worker_mode) return run_worker_mode(args);

  try {
    // ---- read and classify the input ----------------------------------------
    std::vector<InputLine> lines;
    {
      std::ifstream file;
      const bool use_stdin = args.jobs.empty() || args.jobs == "-";
      if (!use_stdin) {
        file.open(args.jobs);
        if (!file) {
          std::fprintf(stderr, "flow_server: cannot read job file %s\n",
                       args.jobs.c_str());
          return 2;
        }
      }
      std::istream& in = use_stdin ? std::cin : file;
      std::string line;
      int lineno = 0;
      while (std::getline(in, line)) {
        ++lineno;
        // Blank lines and #-comments are allowed between jobs.
        const auto pos = line.find_first_not_of(" \t\r");
        if (pos == std::string::npos || line[pos] == '#') continue;
        InputLine l;
        if (is_session_op_line(line)) {
          l.is_op = true;
          l.raw = line;
        } else {
          try {
            l.spec = parse_job_line(line);
          } catch (const JsonlError& e) {
            std::fprintf(stderr, "flow_server: %s line %d: %s\n",
                         use_stdin ? "<stdin>" : args.jobs.c_str(), lineno,
                         e.what());
            return 2;
          }
        }
        lines.push_back(std::move(l));
      }
    }
    if (lines.empty()) {
      std::fprintf(stderr, "flow_server: no jobs\n");
      return 2;
    }

    // ---- options -----------------------------------------------------------
    ServiceOptions sopt;
    if (const int rc = build_service_options(args, sopt)) return rc;

    SessionManagerOptions mopt;
    mopt.sessions_dir = args.sessions_dir;
    mopt.audit = sopt.base.audit;
    mopt.cold_audit = args.eco_cold_audit;
    mopt.base = sopt.base;
    mopt.crash_after_deltas = args.crash_after_deltas;
    mopt.kill_flag = &g_shutdown;

    FlowService service(sopt);
    SessionManager sessions(mopt);

    // Distributed mode: batch jobs go through the coordinator + worker
    // processes instead of the in-process service (session ops stay local).
    std::unique_ptr<Coordinator> coordinator;
    if (args.workers >= 0 || !args.listen.empty()) {
      int rc = 0;
      coordinator = make_coordinator(args, sopt, argv[0], &rc);
      if (!coordinator) return rc;
      const SocketAddr bound = coordinator->start();
      if (!args.quiet)
        std::fprintf(stderr, "flow_server: coordinator on %s, %d worker(s)\n",
                     bound.to_string().c_str(), std::max(args.workers, 0));
    }

    // Signals must not call into the service (handlers can only touch the
    // atomic); a watcher thread relays the flag to the batch scheduler so
    // in-flight jobs unwind at their next cancellation point.
    std::atomic<bool> watcher_done{false};
    std::thread watcher([&] {
      while (!watcher_done.load(std::memory_order_relaxed)) {
        if (g_shutdown.load(std::memory_order_relaxed)) {
          service.request_shutdown();
          if (coordinator) coordinator->request_shutdown();
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });

    // ---- run ----------------------------------------------------------------
    std::vector<std::string> out_lines;
    std::vector<JobSpec> pending;
    bool crashed = false;
    std::string crash_msg;

    auto batch_stats = [&] {
      return coordinator ? coordinator->stats() : service.stats();
    };
    auto flush_batch = [&] {
      if (pending.empty()) return;
      const std::vector<JobResult> results =
          coordinator ? coordinator->run_batch(pending)
                      : service.run_batch(pending);
      pending.clear();
      for (const JobResult& r : results) {
        out_lines.push_back(format_result_line(r, args.stable));
        // Quarantined jobs: findings go to stderr as JSONL so the result
        // stream stays one line per input line.
        if (r.error_code == kJobAuditFailed && !r.audit_jsonl.empty())
          std::fprintf(stderr, "%s\n", r.audit_jsonl.c_str());
      }
      if (args.crash_after_checkpoints > 0 &&
          batch_stats().checkpoints_written >=
              static_cast<std::uint64_t>(args.crash_after_checkpoints)) {
        crashed = true;
        crash_msg = "simulated crash after " +
                    std::to_string(batch_stats().checkpoints_written) +
                    " checkpoints";
      }
    };

    for (InputLine& l : lines) {
      if (crashed || g_shutdown.load(std::memory_order_relaxed)) break;
      if (!l.is_op) {
        pending.push_back(std::move(l.spec));
        continue;
      }
      // Session ops see the results of every batch job submitted above them
      // (e.g. open_session from a checkpoint the batch just wrote).
      flush_batch();
      if (crashed) break;
      out_lines.push_back(sessions.handle_line(l.raw));
      if (sessions.crash_requested()) {
        crashed = true;
        crash_msg = "simulated crash after " +
                    std::to_string(sessions.deltas_persisted()) +
                    " applied deltas";
      }
    }
    if (!crashed && !g_shutdown.load(std::memory_order_relaxed)) flush_batch();

    watcher_done.store(true, std::memory_order_relaxed);
    watcher.join();

    if (crashed) {
      // Simulated crash: the snapshots/sessions are on disk, the results
      // are not.
      std::fprintf(stderr, "flow_server: %s\n", crash_msg.c_str());
      return 42;
    }

    // Graceful shutdown and normal exit share this path: persist every open
    // session, then flush the results produced so far.
    sessions.checkpoint_all();
    if (coordinator) coordinator->stop();

    // ---- write results ------------------------------------------------------
    {
      std::ofstream file;
      const bool use_stdout = args.out.empty() || args.out == "-";
      if (!use_stdout) {
        file.open(args.out);
        if (!file) {
          std::fprintf(stderr, "flow_server: cannot write %s\n",
                       args.out.c_str());
          return 2;
        }
      }
      std::ostream& out = use_stdout ? std::cout : file;
      bool write_failed = false;
      for (const std::string& line : out_lines) {
        if (!(out << line << '\n')) {
          write_failed = true;
          break;
        }
      }
      if (!write_failed) {
        out.flush();
        write_failed = !out;
      }
      if (write_failed) {
        // EPIPE or a short write on the result stream (SIGPIPE is ignored):
        // the consumer is gone, so shut down cleanly with one diagnostic —
        // everything durable (checkpoints, sessions) is already on disk.
        std::fprintf(stderr,
                     "flow_server: result stream closed early (EPIPE/short "
                     "write); shutting down cleanly\n");
        return 0;
      }
    }

    if (!args.quiet) {
      std::fprintf(stderr, "flow_server: %s\n",
                   batch_stats().summary().c_str());
      if (coordinator)
        std::fprintf(stderr, "flow_server: dist: %s\n",
                     coordinator->dist_stats().summary().c_str());
      if (sessions.open_sessions() > 0 || sessions.deltas_persisted() > 0)
        std::fprintf(stderr,
                     "flow_server: eco: %zu open session(s), %llu deltas "
                     "persisted, %zu cached results\n",
                     sessions.open_sessions(),
                     static_cast<unsigned long long>(
                         sessions.deltas_persisted()),
                     sessions.cache().size());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "flow_server: %s\n", e.what());
    return 2;
  }
}
