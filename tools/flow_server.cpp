// Batch job server for place -> replicate -> route runs.
//
// Reads one JSON job object per line (see examples/flow_jobs.jsonl), runs the
// batch over a thread pool with per-stage timeouts, bounded retry and
// stage-boundary checkpointing, and writes one JSON result object per line in
// job order. A failing or hanging job is reported FAILED/TIMED_OUT with a
// nonzero per-job error_code; the process still exits 0 as long as the batch
// itself ran.
//
//   flow_server --jobs batch.jsonl --out results.jsonl \
//               --checkpoint-dir ckpt --threads 4 --job-timeout 60
//   flow_server --jobs batch.jsonl --out results.jsonl --resume ckpt
//
// Exit codes: 0 batch ran (per-job status is in the output), 2 bad usage or
// unreadable job file, 42 simulated crash (--crash-after-checkpoints, CI
// resume test).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/jsonl.h"
#include "serve/service.h"
#include "util/log.h"

using namespace repro;

namespace {

struct Args {
  std::string jobs;  // "" or "-" = stdin
  std::string out;   // "" or "-" = stdout
  std::string checkpoint_dir;
  bool resume = false;
  int threads = 1;
  int engine_threads = 1;
  double job_timeout = 0;
  int max_retries = 0;
  bool stable = false;
  bool quiet = false;
  int crash_after_checkpoints = 0;
  std::string audit;   // "" = leave to REPRO_AUDIT / config default
  std::string placer;  // "" = leave to REPRO_PLACER / config default
};

int usage() {
  std::fprintf(stderr,
               "usage: flow_server [options]\n"
               "  --jobs FILE          JSONL job file (default: stdin)\n"
               "  --out FILE           JSONL results file (default: stdout)\n"
               "  --checkpoint-dir D   write stage-boundary snapshots into D\n"
               "  --resume D           resume from snapshots in D (implies\n"
               "                       --checkpoint-dir D)\n"
               "  --threads N          concurrent jobs (0 = hardware, default 1)\n"
               "  --engine-threads N   speculation threads per job (default 1)\n"
               "  --job-timeout S      per-stage wall-clock timeout in seconds\n"
               "  --max-retries N      retries for failed (not timed-out) jobs\n"
               "  --stable             omit wall-clock fields from results so\n"
               "                       resumed and straight runs compare equal\n"
               "  --placer BACKEND     default placement backend for jobs that\n"
               "                       don't set one: annealer | analytic |\n"
               "                       hybrid (or REPRO_PLACER)\n"
               "  --audit LEVEL        invariant auditing after every stage:\n"
               "                       off | stage | paranoid (default off);\n"
               "                       audit-failing jobs are quarantined\n"
               "  --quiet              no stats summary on stderr\n"
               "  --crash-after-checkpoints N\n"
               "                       CI hook: stop after N checkpoints and\n"
               "                       exit 42 without writing results\n"
               "Env: REPRO_SERVE_THREADS, REPRO_SERVE_JOB_TIMEOUT,\n"
               "     REPRO_SERVE_MAX_RETRIES, REPRO_AUDIT (flags win).\n");
  return 2;
}

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flow_server: missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* arg = argv[i];
    const char* v = nullptr;
    if (!std::strcmp(arg, "--jobs")) {
      if (!(v = need(arg))) return false;
      a.jobs = v;
    } else if (!std::strcmp(arg, "--out")) {
      if (!(v = need(arg))) return false;
      a.out = v;
    } else if (!std::strcmp(arg, "--checkpoint-dir")) {
      if (!(v = need(arg))) return false;
      a.checkpoint_dir = v;
    } else if (!std::strcmp(arg, "--resume")) {
      if (!(v = need(arg))) return false;
      a.checkpoint_dir = v;
      a.resume = true;
    } else if (!std::strcmp(arg, "--threads")) {
      if (!(v = need(arg))) return false;
      a.threads = std::atoi(v);
    } else if (!std::strcmp(arg, "--engine-threads")) {
      if (!(v = need(arg))) return false;
      a.engine_threads = std::atoi(v);
    } else if (!std::strcmp(arg, "--job-timeout")) {
      if (!(v = need(arg))) return false;
      a.job_timeout = std::atof(v);
    } else if (!std::strcmp(arg, "--max-retries")) {
      if (!(v = need(arg))) return false;
      a.max_retries = std::atoi(v);
    } else if (!std::strcmp(arg, "--placer")) {
      if (!(v = need(arg))) return false;
      a.placer = v;
    } else if (!std::strcmp(arg, "--audit")) {
      if (!(v = need(arg))) return false;
      a.audit = v;
    } else if (!std::strcmp(arg, "--stable")) {
      a.stable = true;
    } else if (!std::strcmp(arg, "--quiet")) {
      a.quiet = true;
    } else if (!std::strcmp(arg, "--crash-after-checkpoints")) {
      if (!(v = need(arg))) return false;
      a.crash_after_checkpoints = std::atoi(v);
    } else {
      std::fprintf(stderr, "flow_server: unknown option '%s'\n", arg);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();

  try {
    // ---- read the job file ------------------------------------------------
    std::vector<JobSpec> specs;
    {
      std::ifstream file;
      const bool use_stdin = args.jobs.empty() || args.jobs == "-";
      if (!use_stdin) {
        file.open(args.jobs);
        if (!file) {
          std::fprintf(stderr, "flow_server: cannot read job file %s\n",
                       args.jobs.c_str());
          return 2;
        }
      }
      std::istream& in = use_stdin ? std::cin : file;
      std::string line;
      int lineno = 0;
      while (std::getline(in, line)) {
        ++lineno;
        // Blank lines and #-comments are allowed between jobs.
        const auto pos = line.find_first_not_of(" \t\r");
        if (pos == std::string::npos || line[pos] == '#') continue;
        try {
          specs.push_back(parse_job_line(line));
        } catch (const JsonlError& e) {
          std::fprintf(stderr, "flow_server: %s line %d: %s\n",
                       use_stdin ? "<stdin>" : args.jobs.c_str(), lineno,
                       e.what());
          return 2;
        }
      }
    }
    if (specs.empty()) {
      std::fprintf(stderr, "flow_server: no jobs\n");
      return 2;
    }

    // ---- run the batch ----------------------------------------------------
    ServiceOptions sopt = service_options_from_env();
    sopt.base = config_from_env();
    if (!args.audit.empty() &&
        !parse_audit_level(args.audit, &sopt.base.audit)) {
      std::fprintf(stderr, "flow_server: bad --audit level '%s'\n",
                   args.audit.c_str());
      return usage();
    }
    if (!args.placer.empty() &&
        !parse_placer_backend(args.placer, &sopt.base.placer)) {
      std::fprintf(stderr, "flow_server: bad --placer backend '%s'\n",
                   args.placer.c_str());
      return usage();
    }
    if (args.threads >= 0) sopt.threads = args.threads;
    sopt.engine_threads = args.engine_threads;
    if (args.job_timeout > 0) sopt.job_timeout_seconds = args.job_timeout;
    if (args.max_retries > 0) sopt.max_retries = args.max_retries;
    sopt.checkpoint_dir = args.checkpoint_dir;
    sopt.resume = args.resume;
    sopt.stop_after_checkpoints = args.crash_after_checkpoints;

    FlowService service(sopt);
    const std::vector<JobResult> results = service.run_batch(specs);

    if (args.crash_after_checkpoints > 0 &&
        service.stats().checkpoints_written >=
            static_cast<std::uint64_t>(args.crash_after_checkpoints)) {
      // Simulated crash: the snapshots are on disk, the results are not.
      std::fprintf(stderr, "flow_server: simulated crash after %llu checkpoints\n",
                   static_cast<unsigned long long>(
                       service.stats().checkpoints_written));
      return 42;
    }

    // ---- write results ----------------------------------------------------
    {
      std::ofstream file;
      const bool use_stdout = args.out.empty() || args.out == "-";
      if (!use_stdout) {
        file.open(args.out);
        if (!file) {
          std::fprintf(stderr, "flow_server: cannot write %s\n",
                       args.out.c_str());
          return 2;
        }
      }
      std::ostream& out = use_stdout ? std::cout : file;
      for (const JobResult& r : results) {
        out << format_result_line(r, args.stable) << '\n';
        // Quarantined jobs: findings go to stderr as JSONL so the result
        // stream stays one line per job.
        if (r.error_code == kJobAuditFailed && !r.audit_jsonl.empty())
          std::fprintf(stderr, "%s\n", r.audit_jsonl.c_str());
      }
    }

    if (!args.quiet)
      std::fprintf(stderr, "flow_server: %s\n",
                   service.stats().summary().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "flow_server: %s\n", e.what());
    return 2;
  }
}
