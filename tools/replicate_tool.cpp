// Command-line driver for the placement-coupled replication flow.
//
// Input is either a technology-mapped BLIF netlist (--blif) or a generated
// MCNC-like circuit (--circuit NAME). The tool anneals a timing-driven
// placement (or loads one with --place), optionally runs one of the
// replication variants, optionally routes, and can write the resulting
// netlist/placement/SVG.
//
//   replicate_tool --circuit apex2 --variant lex3 --route
//   replicate_tool --blif design.blif --variant rt \
//                  --out-blif out.blif --out-place out.place --svg out.svg
//
// Exit code 0 on success, 1 on an internal failure (equivalence/legality), 2
// on bad usage.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "eco/session_manager.h"
#include "flow/experiment.h"
#include "flow/svg_report.h"
#include "netlist/blif.h"
#include "netlist/sim.h"
#include "place/place_io.h"
#include "replicate/engine.h"
#include "replicate/local_replication.h"
#include "util/mem.h"
#include "util/stats.h"
#include "timing/timing_graph.h"
#include "util/log.h"

using namespace repro;

namespace {

struct Args {
  std::string blif;
  std::string circuit = "apex2";
  double scale = 0.25;
  std::uint64_t seed = 7;
  std::string placer;  // "" = leave to REPRO_PLACER / config default
  std::string variant = "lex3";
  int threads = 0;
  std::string place_in;
  std::string out_blif;
  std::string out_place;
  std::string svg;
  bool do_route = false;
  // Router fast-path knobs (-1 = keep the FlowConfig/env default).
  int route_astar = -1;
  int route_incremental = -1;
  int route_warm = -1;
  std::string audit;  // "" = leave to REPRO_AUDIT / config default
  std::string eco;    // session-op JSONL file to replay offline
  bool verbose = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: replicate_tool [options]\n"
      "  --blif FILE        read a technology-mapped BLIF netlist\n"
      "  --circuit NAME     generate an MCNC-like circuit (default apex2)\n"
      "  --scale S          generator scale vs Table I sizes (default 0.25)\n"
      "  --seed N           generator/annealer seed (default 7)\n"
      "  --place FILE       load an initial placement instead of annealing\n"
      "  --placer BACKEND   annealer | analytic | hybrid (default annealer,\n"
      "                     or REPRO_PLACER); see DESIGN.md section 10\n"
      "  --variant V        rt|lex2|lex3|lex4|lex5|mc|local|none (default lex3)\n"
      "  --threads N        speculation threads (0 = hardware, 1 = serial;\n"
      "                     results are identical for every value)\n"
      "  --route            evaluate routed W_inf / W_ls critical paths\n"
      "  --route-astar 0|1        A* lookahead in the maze router (default 1)\n"
      "  --route-incremental 0|1  rip up only illegal nets per pass (default 1)\n"
      "  --route-warm 0|1         warm-started W_min binary search (default 1)\n"
      "  --audit LEVEL      invariant auditing after place/replicate/route:\n"
      "                     off | stage | paranoid (default off, or\n"
      "                     REPRO_AUDIT); exit 3 on an audit failure\n"
      "  --eco FILE         replay a session-op JSONL stream (open_session /\n"
      "                     apply_delta / query / close_session) in memory,\n"
      "                     printing one result line per op; every close runs\n"
      "                     the cold-rebuild delta-chain audit. Exit 1 if any\n"
      "                     op failed. Other flags set the base flow config\n"
      "  --out-blif FILE    write the optimized netlist\n"
      "  --out-place FILE   write the final placement\n"
      "  --svg FILE         write a placement/criticality SVG\n"
      "  --verbose          engine debug logging\n");
  return 2;
}

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "replicate_tool: missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* arg = argv[i];
    const char* v = nullptr;
    if (!std::strcmp(arg, "--blif")) {
      if (!(v = need(arg))) return false;
      a.blif = v;
    } else if (!std::strcmp(arg, "--circuit")) {
      if (!(v = need(arg))) return false;
      a.circuit = v;
    } else if (!std::strcmp(arg, "--scale")) {
      if (!(v = need(arg))) return false;
      a.scale = std::atof(v);
    } else if (!std::strcmp(arg, "--seed")) {
      if (!(v = need(arg))) return false;
      a.seed = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--place")) {
      if (!(v = need(arg))) return false;
      a.place_in = v;
    } else if (!std::strcmp(arg, "--placer")) {
      if (!(v = need(arg))) return false;
      a.placer = v;
    } else if (!std::strcmp(arg, "--variant")) {
      if (!(v = need(arg))) return false;
      a.variant = v;
    } else if (!std::strcmp(arg, "--threads")) {
      if (!(v = need(arg))) return false;
      a.threads = std::atoi(v);
    } else if (!std::strcmp(arg, "--route")) {
      a.do_route = true;
    } else if (!std::strcmp(arg, "--route-astar")) {
      if (!(v = need(arg))) return false;
      a.route_astar = std::atoi(v);
    } else if (!std::strcmp(arg, "--route-incremental")) {
      if (!(v = need(arg))) return false;
      a.route_incremental = std::atoi(v);
    } else if (!std::strcmp(arg, "--route-warm")) {
      if (!(v = need(arg))) return false;
      a.route_warm = std::atoi(v);
    } else if (!std::strcmp(arg, "--audit")) {
      if (!(v = need(arg))) return false;
      a.audit = v;
    } else if (!std::strcmp(arg, "--eco")) {
      if (!(v = need(arg))) return false;
      a.eco = v;
    } else if (!std::strcmp(arg, "--out-blif")) {
      if (!(v = need(arg))) return false;
      a.out_blif = v;
    } else if (!std::strcmp(arg, "--out-place")) {
      if (!(v = need(arg))) return false;
      a.out_place = v;
    } else if (!std::strcmp(arg, "--svg")) {
      if (!(v = need(arg))) return false;
      a.svg = v;
    } else if (!std::strcmp(arg, "--verbose")) {
      a.verbose = true;
    } else {
      std::fprintf(stderr, "replicate_tool: unknown option '%s'\n", arg);
      return false;
    }
  }
  return true;
}

}  // namespace

namespace {

int run(const Args& args);

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  if (args.verbose) set_log_level(LogLevel::kDebug);
  // Any uncaught failure becomes a one-line error on stderr, never an
  // unhandled-exception traceback.
  try {
    return run(args);
  } catch (const AuditError& e) {
    std::fprintf(stderr, "replicate_tool: audit failed: %s\n", e.what());
    std::fprintf(stderr, "%s\n", e.report().to_jsonl_lines().c_str());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replicate_tool: error: %s\n", e.what());
    return 1;
  }
}

namespace {

int run(const Args& args) {

  FlowConfig cfg = config_from_env();
  cfg.scale = args.scale;
  cfg.seed = args.seed;
  if (args.route_astar >= 0) cfg.router.use_astar = args.route_astar != 0;
  if (args.route_incremental >= 0)
    cfg.router.incremental_reroute = args.route_incremental != 0;
  if (args.route_warm >= 0) cfg.router.warm_start_wmin = args.route_warm != 0;
  if (!args.placer.empty() && !parse_placer_backend(args.placer, &cfg.placer)) {
    std::fprintf(stderr, "replicate_tool: bad --placer backend '%s'\n",
                 args.placer.c_str());
    return usage();
  }
  if (!args.audit.empty() && !parse_audit_level(args.audit, &cfg.audit)) {
    std::fprintf(stderr, "replicate_tool: bad --audit level '%s'\n",
                 args.audit.c_str());
    return usage();
  }
  // ---- ECO replay mode ------------------------------------------------------
  if (!args.eco.empty()) {
    std::ifstream in(args.eco);
    if (!in) {
      std::fprintf(stderr, "replicate_tool: cannot read %s\n",
                   args.eco.c_str());
      return 2;
    }
    SessionManagerOptions mopt;
    mopt.audit = cfg.audit;
    mopt.cold_audit = true;  // offline replay is the paranoid path
    mopt.base = cfg;
    SessionManager sessions(mopt);
    bool any_failed = false;
    std::string line;
    while (std::getline(in, line)) {
      const auto pos = line.find_first_not_of(" \t\r");
      if (pos == std::string::npos || line[pos] == '#') continue;
      const std::string result = sessions.handle_line(line);
      std::printf("%s\n", result.c_str());
      if (result.find("\"ok\":false") != std::string::npos) any_failed = true;
    }
    return any_failed ? 1 : 0;
  }

  AuditOptions audit_opt;
  audit_opt.level = cfg.audit;
  audit_opt.seed = cfg.seed;
  const Auditor auditor(audit_opt);

  // ---- obtain a netlist -----------------------------------------------------
  std::unique_ptr<Netlist> nl;
  std::string name;
  if (!args.blif.empty()) {
    try {
      BlifResult r = read_blif_file(args.blif);
      nl = std::make_unique<Netlist>(std::move(r.netlist));
      name = r.model_name.empty() ? args.blif : r.model_name;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "replicate_tool: error reading %s: %s\n",
                   args.blif.c_str(), e.what());
      return 2;
    }
  } else {
    const McncCircuit* c = nullptr;
    for (const McncCircuit& m : mcnc_suite())
      if (args.circuit == m.name) c = &m;
    if (!c) {
      std::fprintf(stderr, "replicate_tool: unknown circuit '%s'\n",
                   args.circuit.c_str());
      return usage();
    }
    nl = std::make_unique<Netlist>(generate_circuit(spec_for(*c, cfg.scale, cfg.seed)));
    name = c->name;
  }
  Netlist golden = *nl;
  std::printf("%s: %zu LUTs (%zu registered), %zu inputs, %zu outputs\n",
              name.c_str(), nl->num_logic(), nl->num_registered(),
              nl->num_input_pads(), nl->num_output_pads());

  // ---- place ----------------------------------------------------------------
  const int n = FpgaGrid::min_grid_for(nl->num_logic(),
                                       nl->num_input_pads() + nl->num_output_pads());
  FpgaGrid grid(n);
  std::unique_ptr<Placement> pl;
  if (!args.place_in.empty()) {
    pl = std::make_unique<Placement>(*nl, grid);
    try {
      read_placement_file(*pl, args.place_in);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "replicate_tool: error reading %s: %s\n",
                   args.place_in.c_str(), e.what());
      return 2;
    }
  } else {
    PlacerOptions popt;
    popt.backend = cfg.placer;
    popt.annealer = cfg.annealer;
    popt.annealer.seed = cfg.seed;
    popt.analytic = cfg.analytic;
    popt.audit = cfg.audit;
    popt.audit_seed = cfg.seed;
    PlacerStats pstats;
    pl = std::make_unique<Placement>(
        place_circuit(*nl, grid, cfg.delay, popt, &pstats));
    std::printf("placer %s: %llu work units\n",
                placer_backend_name(pstats.backend),
                static_cast<unsigned long long>(pstats.work_units()));
  }
  {
    TimingGraph tg(*nl, *pl, cfg.delay);
    std::printf("placed on %dx%d; critical path estimate %.2f ns\n", n, n,
                tg.critical_delay());
  }
  if (cfg.audit != AuditLevel::kOff)
    Auditor::require_clean(
        "place", auditor.audit_stage("place", *nl, pl.get(), &cfg.delay));

  // ---- optimize ---------------------------------------------------------------
  if (args.variant == "local") {
    LocalReplicationOptions opt;
    opt.seed = cfg.seed;
    LocalReplicationResult r = run_local_replication(*nl, *pl, cfg.delay, opt);
    std::printf("local replication: %.2f -> %.2f ns (%d replicas)\n",
                r.initial_critical, r.final_critical, r.replications);
  } else if (args.variant != "none") {
    EngineOptions opt;
    if (args.variant == "rt") opt.variant = EmbedVariant::kRtEmbedding;
    else if (args.variant == "lex2") opt.variant = EmbedVariant::kLex2;
    else if (args.variant == "lex3") opt.variant = EmbedVariant::kLex3;
    else if (args.variant == "lex4") opt.variant = EmbedVariant::kLex4;
    else if (args.variant == "lex5") opt.variant = EmbedVariant::kLex5;
    else if (args.variant == "mc") opt.variant = EmbedVariant::kLexMc;
    else return usage();
    opt.num_threads = args.threads > 0 ? args.threads : cfg.num_threads;
    EngineResult r = run_replication_engine(*nl, *pl, cfg.delay, opt);
    std::printf("%s: %.2f -> %.2f ns over %zu iterations "
                "(%d replicated, %d unified)%s\n",
                variant_name(opt.variant), r.initial_critical, r.final_critical,
                r.history.size(), r.total_replicated, r.total_unified,
                r.ran_out_of_slots ? " [slots exhausted]" : "");
    if (r.region_truncations > 0)
      std::printf("warning: %llu embedding region(s) truncated by "
                  "max_region_points guard\n",
                  static_cast<unsigned long long>(r.region_truncations));
  }

  // ---- verify -----------------------------------------------------------------
  std::string why;
  if (!functionally_equivalent(golden, *nl, 64, 0xC0FFEE, &why)) {
    std::fprintf(stderr,
                 "replicate_tool: INTERNAL ERROR: optimized netlist not "
                 "equivalent: %s\n",
                 why.c_str());
    return 1;
  }
  if (!pl->legal()) {
    std::fprintf(stderr, "replicate_tool: INTERNAL ERROR: placement illegal: %s\n",
                 pl->check_legal().c_str());
    return 1;
  }
  if (cfg.audit != AuditLevel::kOff)
    Auditor::require_clean(
        "replicate",
        auditor.audit_stage("replicate", *nl, pl.get(), &cfg.delay, &golden));

  // ---- route / outputs ----------------------------------------------------------
  if (args.do_route) {
    CircuitMetrics m = evaluate_routed(name, *nl, *pl, cfg);
    std::printf(
        "routed: W_inf %.2f ns | W_ls %.2f ns (Wmin %d) | wirelength %lld | "
        "%llu nodes expanded in %llu passes\n",
        m.crit_winf, m.crit_wls, m.wmin, static_cast<long long>(m.wirelength),
        static_cast<unsigned long long>(m.route_nodes_expanded),
        static_cast<unsigned long long>(m.route_passes));
  }
  try {
    if (!args.out_blif.empty()) {
      write_blif_file(*nl, name, args.out_blif);
      std::printf("wrote %s\n", args.out_blif.c_str());
    }
    if (!args.out_place.empty()) {
      write_placement_file(*pl, name, args.out_place);
      std::printf("wrote %s\n", args.out_place.c_str());
    }
    if (!args.svg.empty()) {
      write_placement_svg_file(*pl, cfg.delay, args.svg);
      std::printf("wrote %s\n", args.svg.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replicate_tool: error writing outputs: %s\n",
                 e.what());
    return 1;
  }

  // Memory trajectory: process peak RSS plus the scratch-arena high-water
  // marks (DESIGN.md §9). Diagnostic only — values vary across machines.
  const ArenaCounters& ac = arena_counters();
  std::printf(
      "memory: peak rss %.1f MiB | arenas %.1f MiB "
      "(spt %zu, monotone %zu, embed %zu, sim %zu, bbox %zu bytes; "
      "%llu reuses, %llu growths)\n",
      static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0),
      static_cast<double>(ac.total_bytes()) / (1024.0 * 1024.0),
      static_cast<std::size_t>(ac.spt_scratch_bytes.load()),
      static_cast<std::size_t>(ac.monotone_scratch_bytes.load()),
      static_cast<std::size_t>(ac.embed_scratch_bytes.load()),
      static_cast<std::size_t>(ac.sim_buffer_bytes.load()),
      static_cast<std::size_t>(ac.annealer_bbox_bytes.load()),
      static_cast<unsigned long long>(ac.scratch_reuses.load()),
      static_cast<unsigned long long>(ac.scratch_growths.load()));
  return 0;
}

}  // namespace
